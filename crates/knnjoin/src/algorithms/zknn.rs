//! H-zkNNJ — the z-value-based *approximate* kNN join (Zhang, Li, Jestes;
//! EDBT 2012), the third competitor of the paper's evaluation and the only
//! one trading exactness for speed.
//!
//! The idea: map every object to a one-dimensional *z-value* (bit-interleaved
//! quantized coordinates, [`geom::zorder`]), where spatial proximity mostly
//! survives.  A kNN query then becomes a scan of the nearest z-values — a
//! window of `z_window · k` on each side of the query's position in z-order
//! (the EDBT paper uses `z_window = 1`, i.e. the 2k z-neighbours) — instead
//! of a scan of `S`.  Because the z-curve has seams, the whole join is
//! repeated over `α` randomly shifted copies of the data (`shift_copies`) and
//! the per-copy candidates are merged, keeping the *exact-over-candidates*
//! top-`k`: every reported distance is a true distance, only the candidate
//! sets are approximate.
//!
//! As two MapReduce jobs:
//!
//! 1. **`zknn-join`** — each shifted copy of `R ∪ S` is sorted by z-value and
//!    range-partitioned into `n` balanced slabs (boundaries are computed
//!    driver-side from the full sort; the paper estimates them from a sample
//!    and then copies the `k` boundary records between adjacent partitions —
//!    here the `S` slabs are *padded* by the candidate window on each side
//!    directly, which replicates exactly those boundary records).  Each
//!    reducer sorts its slab's `S` subset by z-value and answers every local
//!    `r` from its z-window, computing true distances to the candidates.
//! 2. **`zknn-merge`** — the standard merge job (shared with H-BRJ/PBJ): the
//!    `α` partial candidate lists of every `r` fold into the final top-`k`,
//!    pre-merged map-side when the combiner knob is on.
//!
//! Cost structure: `O(α·|R∪S|)` shuffled records and at most
//! `α·2·z_window·k` distance computations per `R` object — a constant per
//! object, far below the exact algorithms — at the price of recall < 1 when
//! a true neighbour is z-far in every shifted copy.
//! [`crate::result::QualityReport`] measures exactly that trade.

use crate::algorithms::blocks::MergeMapper;
use crate::algorithms::common::{counters, EncodedRecord, NeighborListValue};
use crate::algorithms::KnnJoinAlgorithm;
use crate::context::ExecutionContext;
use crate::delta::DeltaOverlay;
use crate::exact::validate_inputs;
use crate::metrics::{phases, JoinMetrics};
use crate::result::{JoinError, JoinResult, JoinRow};
use geom::zorder::{random_shifts, ZQuantizer, ZValue, MAX_Z_BITS};
use geom::{
    CoordMatrix, DistanceMetric, KernelMode, NeighborList, Point, PointId, PointSet, RecordKind,
};
use mapreduce::{IdentityPartitioner, JobBuilder, MapContext, Mapper, ReduceContext, Reducer};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of [`Zknn`].
#[derive(Debug, Clone)]
pub struct ZknnConfig {
    /// `α`, the number of randomly shifted copies of the data (the first copy
    /// is always unshifted).  More copies cost proportionally more shuffle
    /// and candidates but heal more z-curve seams; the EDBT paper uses 2–4.
    pub shift_copies: usize,
    /// Grid bits per dimension for the z-value quantization (1..=32, and
    /// `dims · bits` must fit the 256-bit z-value).  More bits resolve finer
    /// spatial detail; 16 is plenty for the paper's workloads.
    pub quantization_bits: u32,
    /// Candidate-window multiplier: each `R` object considers
    /// `z_window · k` z-neighbours *per side* (the EDBT paper's window is
    /// `z_window = 1`, i.e. 2k candidates per copy).  One z-order scan covers
    /// a single curve locality; widening the window compensates for the
    /// curve's distortion at higher dimensionality, where true neighbours
    /// spread further along the curve.  The default 4 holds recall ≈ 0.9 at
    /// `shift_copies = 2` on the paper's 10-d Forest workload while staying
    /// far below the exact algorithms' distance work.
    pub z_window: usize,
    /// Number of reducers ("computing nodes").  Job 1 uses about this many
    /// slab reducers in total, spread over the shifted copies.
    pub reducers: usize,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// Whether the merge job pre-merges each map task's partial candidate
    /// lists map-side before they cross the shuffle.  Enabled by default.
    pub combiner: bool,
    /// Seed for the random shift vectors.
    pub seed: u64,
    /// How the candidate windows evaluate distances.  `Exact` keeps the
    /// scalar kernel loop; any other mode streams each contiguous z-window
    /// through the multi-accumulator batch rank kernels (`RankF32` behaves
    /// like `Fast` here — the windows hold at most `2·z_window·k` rows, too
    /// few for a separate `f32` filtering pass to pay off).  The candidate
    /// *sets* are identical in every mode; only the floating-point
    /// accumulation order differs.
    pub kernel_mode: KernelMode,
}

impl Default for ZknnConfig {
    fn default() -> Self {
        Self {
            shift_copies: 2,
            quantization_bits: 16,
            z_window: 4,
            reducers: 4,
            map_tasks: 8,
            combiner: true,
            seed: 0x5EED,
            kernel_mode: KernelMode::default(),
        }
    }
}

/// The H-zkNNJ approximate algorithm.
#[derive(Debug, Clone, Default)]
pub struct Zknn {
    config: ZknnConfig,
}

impl Zknn {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: ZknnConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ZknnConfig {
        &self.config
    }

    fn validate(&self) -> Result<(), JoinError> {
        if self.config.shift_copies == 0 {
            return Err(JoinError::InvalidConfig(
                "shift_copies must be at least 1".into(),
            ));
        }
        if self.config.quantization_bits == 0 || self.config.quantization_bits > 32 {
            return Err(JoinError::InvalidConfig(format!(
                "quantization_bits must be in 1..=32 (got {})",
                self.config.quantization_bits
            )));
        }
        if self.config.z_window == 0 {
            return Err(JoinError::InvalidConfig(
                "z_window must be at least 1".into(),
            ));
        }
        if self.config.reducers == 0 {
            return Err(JoinError::ZeroReducers);
        }
        if self.config.map_tasks == 0 {
            return Err(JoinError::ZeroMapTasks);
        }
        Ok(())
    }
}

impl KnnJoinAlgorithm for Zknn {
    fn name(&self) -> &'static str {
        "H-zkNNJ"
    }

    fn join_with(
        &self,
        r: &PointSet,
        s: &PointSet,
        k: usize,
        metric: DistanceMetric,
        ctx: &ExecutionContext,
    ) -> Result<JoinResult, JoinError> {
        self.validate()?;
        validate_inputs(r, s, k)?;
        let cfg = &self.config;
        let dims = r.dims();
        if dims as u32 * cfg.quantization_bits > MAX_Z_BITS {
            return Err(JoinError::InvalidConfig(format!(
                "{dims} dims × {} quantization bits exceeds the {MAX_Z_BITS}-bit z-value",
                cfg.quantization_bits
            )));
        }
        let mut metrics = JoinMetrics {
            r_size: r.len(),
            s_size: s.len(),
            ..Default::default()
        };

        // ---- Driver: quantizer, shifts and slab boundaries -----------------
        let start = Instant::now();
        let shared = Arc::new(ZknnShared::build(r, s, k, cfg));
        metrics.record_phase(phases::DATA_PARTITIONING, start.elapsed());

        // ---- Job 1: per-copy z-order slabs, 2k z-neighbour candidates ------
        let mut input = Vec::with_capacity(r.len() + s.len());
        for p in r {
            input.push((p.id, EncodedRecord::from_parts(RecordKind::R, 0, 0.0, p)));
        }
        for p in s {
            input.push((p.id, EncodedRecord::from_parts(RecordKind::S, 0, 0.0, p)));
        }
        let start = Instant::now();
        let join_job = JobBuilder::new("zknn-join")
            .reducers(shared.copies.len() * shared.slabs)
            .map_tasks(cfg.map_tasks)
            .workers(ctx.workers())
            .run_with_partitioner(
                input,
                &ZRouteMapper {
                    shared: Arc::clone(&shared),
                },
                &ZSlabReducer {
                    shared: Arc::clone(&shared),
                    k,
                    metric,
                    mode: cfg.kernel_mode,
                },
                &IdentityPartitioner,
            )
            .map_err(|e| JoinError::substrate("zknn-join", e))?;
        metrics.record_phase(phases::KNN_JOIN, start.elapsed());
        metrics.absorb_job(&join_job.metrics);

        // ---- Job 2: merge the per-copy candidate lists ---------------------
        let start = Instant::now();
        let merge_combiner = ZMergeCombiner { k };
        let merge_job = JobBuilder::new("zknn-merge")
            .reducers(cfg.reducers)
            .map_tasks(cfg.map_tasks)
            .workers(ctx.workers())
            .run_with_optional_combiner(
                join_job.output,
                &MergeMapper,
                cfg.combiner.then_some(&merge_combiner),
                &ZMergeReducer { k },
            )
            .map_err(|e| JoinError::substrate("zknn-merge", e))?;
        metrics.record_phase(phases::RESULT_MERGING, start.elapsed());
        metrics.absorb_job(&merge_job.metrics);

        let rows = merge_job
            .output
            .into_iter()
            .map(|(r_id, neighbors)| JoinRow { r_id, neighbors })
            .collect();
        let mut result = JoinResult { rows, metrics };
        result.normalize();
        Ok(result)
    }
}

/// The driver-side calibration shared by the cold and prepared paths: the
/// quantization domain over `R ∪ S`, the [`ZQuantizer`] it induces, and the
/// seeded shift vectors.  One definition, so the prepared path cannot drift
/// from the cold computation it must reproduce bit for bit.
fn z_calibration(
    r: &PointSet,
    s: &PointSet,
    bits: u32,
    copies: usize,
    seed: u64,
) -> (ZQuantizer, Vec<Vec<f64>>) {
    let dims = r.dims();
    let mut mins = vec![f64::INFINITY; dims];
    let mut maxs = vec![f64::NEG_INFINITY; dims];
    for p in r.iter().chain(s.iter()) {
        for d in 0..dims {
            mins[d] = mins[d].min(p.coords[d]);
            maxs[d] = maxs[d].max(p.coords[d]);
        }
    }
    let widths: Vec<f64> = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
    let quantizer =
        ZQuantizer::new(&mins, &maxs, bits).expect("bits validated against dims before build");
    let shifts = random_shifts(&widths, copies, seed);
    (quantizer, shifts)
}

/// One shifted copy's range partitioning: the slab cut points over `R ∪ S`
/// z-values, and the `k`-rank-padded z-window of `S` records each slab
/// additionally receives (the boundary replicas of the EDBT paper).
#[derive(Debug, Clone)]
struct CopySlabs {
    /// Ascending cut z-values; a z belongs to slab `#cuts ≤ z`.
    cuts: Vec<ZValue>,
    /// Per slab: smallest S z-value the (padded) slab receives.
    pad_lo: Vec<ZValue>,
    /// Per slab: largest S z-value the (padded) slab receives.
    pad_hi: Vec<ZValue>,
}

/// Everything the mapper and reducer share: the quantizer, the shift
/// vectors, and each copy's slab boundaries.
#[derive(Debug)]
struct ZknnShared {
    quantizer: ZQuantizer,
    shifts: Vec<Vec<f64>>,
    slabs: usize,
    /// Candidate z-neighbours per side: `z_window · k`.
    window: usize,
    copies: Vec<CopySlabs>,
}

impl ZknnShared {
    /// Computes the quantization domain, shift vectors and per-copy balanced
    /// slab boundaries from the data (driver-side preprocessing; the shuffled
    /// work stays in the MapReduce jobs).
    fn build(r: &PointSet, s: &PointSet, k: usize, cfg: &ZknnConfig) -> ZknnShared {
        let (quantizer, shifts) =
            z_calibration(r, s, cfg.quantization_bits, cfg.shift_copies, cfg.seed);
        // Spread the reducer budget over the copies, at least one slab each.
        let slabs = (cfg.reducers / cfg.shift_copies).max(1);
        let window = cfg.z_window.saturating_mul(k);

        let copies = shifts
            .iter()
            .map(|shift| {
                let mut all_z: Vec<ZValue> = r
                    .iter()
                    .chain(s.iter())
                    .map(|p| quantizer.z_value(&p.coords, Some(shift)))
                    .collect();
                let mut s_z: Vec<ZValue> = s
                    .iter()
                    .map(|p| quantizer.z_value(&p.coords, Some(shift)))
                    .collect();
                all_z.sort_unstable();
                s_z.sort_unstable();
                // Balanced slabs over the combined sort: cut j sits at rank
                // (j+1)·n/slabs.
                let n = all_z.len();
                let cuts: Vec<ZValue> = (1..slabs).map(|j| all_z[j * n / slabs]).collect();
                let mut pad_lo = Vec::with_capacity(slabs);
                let mut pad_hi = Vec::with_capacity(slabs);
                for j in 0..slabs {
                    // S ranks covered by slab j, then padded by the candidate
                    // window on each side so boundary objects keep their full
                    // window.
                    let lo = if j == 0 {
                        0
                    } else {
                        s_z.partition_point(|z| *z < cuts[j - 1])
                    };
                    let hi = if j + 1 == slabs {
                        s_z.len()
                    } else {
                        s_z.partition_point(|z| *z < cuts[j])
                    };
                    let plo = lo.saturating_sub(window);
                    let phi = (hi + window).min(s_z.len());
                    pad_lo.push(if plo == 0 { ZValue::MIN } else { s_z[plo] });
                    pad_hi.push(if phi == s_z.len() {
                        ZValue::MAX
                    } else {
                        s_z[phi - 1]
                    });
                }
                CopySlabs {
                    cuts,
                    pad_lo,
                    pad_hi,
                }
            })
            .collect();

        ZknnShared {
            quantizer,
            shifts,
            slabs,
            window,
            copies,
        }
    }

    /// The z-value of `coords` in shifted copy `copy`.
    fn z(&self, copy: usize, coords: &[f64]) -> ZValue {
        self.quantizer.z_value(coords, Some(&self.shifts[copy]))
    }

    /// The slab of a z-value within one copy.
    fn slab_of(&self, copy: usize, z: ZValue) -> usize {
        self.copies[copy].cuts.partition_point(|c| *c <= z)
    }
}

/// Mapper of job 1: for every shifted copy, route each `R` record to its
/// z-slab and each `S` record to every slab whose padded z-window contains it
/// (its own slab plus, near boundaries, the neighbour it pads).
struct ZRouteMapper {
    shared: Arc<ZknnShared>,
}

impl Mapper for ZRouteMapper {
    type KIn = u64;
    type VIn = EncodedRecord;
    type KOut = u32;
    type VOut = EncodedRecord;

    fn map(&self, _key: &u64, value: &EncodedRecord, ctx: &mut MapContext<u32, EncodedRecord>) {
        let record = value.decode();
        let slabs = self.shared.slabs;
        for copy in 0..self.shared.copies.len() {
            let z = self.shared.z(copy, &record.point.coords);
            match record.kind {
                RecordKind::R => {
                    let slab = self.shared.slab_of(copy, z);
                    ctx.counters().increment(counters::R_RECORDS);
                    ctx.emit((copy * slabs + slab) as u32, value.clone());
                }
                RecordKind::S => {
                    let bounds = &self.shared.copies[copy];
                    for slab in 0..slabs {
                        if z >= bounds.pad_lo[slab] && z <= bounds.pad_hi[slab] {
                            ctx.counters().increment(counters::S_RECORDS);
                            ctx.emit((copy * slabs + slab) as u32, value.clone());
                        }
                    }
                }
            }
        }
    }
}

/// Reducer of job 1, one per (copy, slab): sort the received `S` subset by
/// z-value and answer every local `r` from the candidate window around its
/// z-position — `z_window · k` preceding and following — with true
/// distances.
struct ZSlabReducer {
    shared: Arc<ZknnShared>,
    k: usize,
    metric: DistanceMetric,
    mode: KernelMode,
}

impl Reducer for ZSlabReducer {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = NeighborListValue;

    fn reduce(
        &self,
        key: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, NeighborListValue>,
    ) {
        let copy = *key as usize / self.shared.slabs;
        let mut r_block: Vec<(ZValue, Point)> = Vec::new();
        let mut s_block: Vec<(ZValue, Point)> = Vec::new();
        for value in values {
            let record = value.decode();
            let z = self.shared.z(copy, &record.point.coords);
            match record.kind {
                RecordKind::R => r_block.push((z, record.point)),
                RecordKind::S => s_block.push((z, record.point)),
            }
        }
        if r_block.is_empty() {
            return;
        }
        // Sort S by (z, id): the id tiebreak makes the candidate windows
        // deterministic when z-values collide (duplicate or grid-coincident
        // points).
        s_block.sort_unstable_by_key(|(z, p)| (*z, p.id));
        let s_z: Vec<ZValue> = s_block.iter().map(|(z, _)| *z).collect();
        let s_ids: Vec<PointId> = s_block.iter().map(|(_, p)| p.id).collect();
        let mut s_coords = CoordMatrix::new(self.shared.quantizer.dims());
        for (_, p) in &s_block {
            s_coords.push_row(&p.coords);
        }
        let kernel = self.metric.kernel();
        let batch = self.metric.batch_rank_kernel();
        let dims = self.shared.quantizer.dims();
        // Scratch for the batched window evaluation: at most 2·window rows.
        let mut ranks: Vec<f64> = Vec::new();

        let window = self.shared.window;
        for (z_r, r_obj) in &r_block {
            // The candidate z-window around r's insertion position.
            let pos = s_z.partition_point(|z| z < z_r);
            let lo = pos.saturating_sub(window);
            let hi = (pos + window).min(s_z.len());
            let mut list = NeighborList::new(self.k);
            if self.mode.is_exact() {
                for (idx, id) in s_ids.iter().enumerate().take(hi).skip(lo) {
                    list.offer(*id, kernel(&r_obj.coords, s_coords.row(idx)));
                }
            } else {
                // The window is one contiguous run of sorted-S rows: a single
                // batch call covers it, and the monotone rank→distance map
                // restores true distances before the bounded offer.
                let m = hi - lo;
                if ranks.len() < m {
                    ranks.resize(m, 0.0);
                }
                batch(
                    &r_obj.coords,
                    &s_coords.as_slice()[lo * dims..hi * dims],
                    dims,
                    &mut ranks[..m],
                );
                self.metric.ranks_to_distances(&mut ranks[..m]);
                for (off, id) in s_ids[lo..hi].iter().enumerate() {
                    list.offer(*id, ranks[off]);
                }
            }
            ctx.counters()
                .add(counters::DISTANCE_COMPUTATIONS, (hi - lo) as u64);
            ctx.emit(r_obj.id, NeighborListValue::new(list.into_sorted()));
        }
    }
}

/// Merges per-copy candidate lists into the `k` best *distinct* `S` objects.
///
/// Unlike the block algorithms' merge (where every `(r, s)` pair meets in
/// exactly one reducer cell), H-zkNNJ can find the same `S` object in several
/// shifted copies; keeping duplicates would crowd distinct candidates out of
/// the top-`k`.  Deduplicating by id before bounding is associative — an id a
/// partial merge drops is beaten by `k` distinct ids that all survive into
/// the next round — so the map-side combiner applies the same function.
pub(crate) fn merge_distinct_candidates(
    lists: &[NeighborListValue],
    k: usize,
) -> Vec<geom::Neighbor> {
    // BTreeMap (not HashMap): the bounded list breaks exact-distance ties by
    // arrival order, so candidates must be offered in a deterministic (id)
    // order or equal-distance survivors would vary run to run.
    let mut best: std::collections::BTreeMap<PointId, f64> = std::collections::BTreeMap::new();
    for list in lists {
        for n in &list.neighbors {
            best.entry(n.id)
                .and_modify(|d| *d = d.min(n.distance))
                .or_insert(n.distance);
        }
    }
    let mut acc = NeighborList::new(k);
    for (id, distance) in best {
        acc.offer(id, distance);
    }
    acc.into_sorted()
}

/// Map-side combiner of the merge job: fold the partial candidate lists a map
/// task holds for one `R` object into one `k`-bounded distinct list.
struct ZMergeCombiner {
    k: usize,
}

impl mapreduce::Combiner for ZMergeCombiner {
    type K = u64;
    type V = NeighborListValue;

    fn combine(&self, _key: &u64, values: &[NeighborListValue]) -> Vec<NeighborListValue> {
        vec![NeighborListValue::new(merge_distinct_candidates(
            values, self.k,
        ))]
    }
}

/// Reducer of the merge job: the `k` globally best distinct candidates.
struct ZMergeReducer {
    k: usize,
}

impl Reducer for ZMergeReducer {
    type KIn = u64;
    type VIn = NeighborListValue;
    type KOut = u64;
    type VOut = Vec<geom::Neighbor>;

    fn reduce(
        &self,
        key: &u64,
        values: &[NeighborListValue],
        ctx: &mut ReduceContext<u64, Vec<geom::Neighbor>>,
    ) {
        ctx.emit(*key, merge_distinct_candidates(values, self.k));
    }
}

// ---------------------------------------------------------------------------
// Prepared (build/probe) serving path
// ---------------------------------------------------------------------------

/// One shifted copy of `S`, fully sorted by `(z-value, id)` with the
/// coordinates in matching flat rows — the windows any probe object scans.
#[derive(Debug)]
struct SortedCopy {
    z: Vec<ZValue>,
    ids: Vec<PointId>,
    coords: CoordMatrix,
}

/// The prepared H-zkNNJ state: the quantizer and shift vectors (calibrated
/// from the datasets the join was prepared with, exactly as the cold driver
/// computes them) plus one `(z, id)`-sorted copy of `S` per shift.  Because
/// each resident copy is the *full* sorted `S`, a probe object's candidate
/// window around its z-position is identical to the window the cold slab
/// reducers see (slab padding exists only to reassemble this list under
/// partitioning), so prepared answers are bit-identical to cold ones.
#[derive(Debug)]
pub(crate) struct ZknnPrepared {
    quantizer: ZQuantizer,
    shifts: Vec<Vec<f64>>,
    /// Candidate z-neighbours per side: `z_window · k`.
    window: usize,
    copies: Vec<SortedCopy>,
    /// The plan's [`KernelMode`], fixed at prepare time (see
    /// [`ZknnConfig::kernel_mode`] for the `RankF32`-behaves-as-`Fast`
    /// caveat).
    mode: KernelMode,
}

impl ZknnPrepared {
    /// Builds the sorted shifted copies of `S`.  `calibration_r` only
    /// calibrates the quantization domain (the cold driver derives it from
    /// `R ∪ S`); out-of-domain probe coordinates are clamped by the
    /// quantizer.
    pub(crate) fn build(
        calibration_r: &PointSet,
        s: &PointSet,
        plan: &crate::plan::JoinPlan,
        metrics: &mut JoinMetrics,
    ) -> Self {
        let start = Instant::now();
        let dims = s.dims();
        let (quantizer, shifts) = z_calibration(
            calibration_r,
            s,
            plan.quantization_bits,
            plan.shift_copies,
            plan.seed,
        );
        let copies = shifts
            .iter()
            .map(|shift| {
                let mut entries: Vec<(ZValue, &Point)> = s
                    .iter()
                    .map(|p| (quantizer.z_value(&p.coords, Some(shift)), p))
                    .collect();
                entries.sort_unstable_by_key(|(z, p)| (*z, p.id));
                let mut coords = CoordMatrix::new(dims);
                let mut z = Vec::with_capacity(entries.len());
                let mut ids = Vec::with_capacity(entries.len());
                for (zv, p) in entries {
                    z.push(zv);
                    ids.push(p.id);
                    coords.push_row(&p.coords);
                }
                SortedCopy { z, ids, coords }
            })
            .collect();
        metrics.record_phase(phases::PREPARE_BUILD, start.elapsed());
        Self {
            quantizer,
            shifts,
            window: plan.z_window.saturating_mul(plan.k),
            copies,
            mode: plan.kernel_mode,
        }
    }

    /// Answers one probe batch with a single serve job: per object and per
    /// copy, scan the `z_window · k` z-neighbours on each side, then merge
    /// the per-copy candidates into the `k` best distinct `S` objects.
    ///
    /// When a delta overlay is present, its adds are quantized with the
    /// *prepared* quantizer and shifts into a `(z, id)`-sorted index per
    /// copy, and every window is the two-pointer merge of frozen and delta
    /// entries — exactly the window a cold build over the materialized
    /// corpus would scan, provided cold calibration yields this quantizer.
    /// Tombstoned frozen entries are skipped without consuming window slots.
    pub(crate) fn probe(
        &self,
        r: &PointSet,
        plan: &crate::plan::JoinPlan,
        ctx: &ExecutionContext,
        delta: Option<&Arc<DeltaOverlay>>,
        metrics: &mut JoinMetrics,
    ) -> Result<Vec<JoinRow>, JoinError> {
        use crate::algorithms::common::{encode_probe_batch, run_serve_job, HashRouteMapper};

        let delta = delta.map(|overlay| {
            (
                Arc::clone(overlay),
                Arc::new(delta_sorted_copies(&self.quantizer, &self.shifts, overlay)),
            )
        });
        run_serve_job(
            "zknn-serve",
            encode_probe_batch(r),
            plan.reducers,
            plan.map_tasks,
            ctx.workers(),
            &HashRouteMapper {
                reducers: plan.reducers,
            },
            &ZknnServeReducer {
                prepared: self,
                k: plan.k,
                metric: plan.metric,
                delta,
            },
            metrics,
        )
    }

    /// Folds the overlay into the sorted copies: per copy, a linear merge of
    /// the live frozen entries (tombstones dropped) with the delta's sorted
    /// adds, both ordered by `(z, id)`.  The quantizer, shifts and window are
    /// *unchanged* — the z-domain is fixed at prepare time, so compaction
    /// never perturbs frozen z-values.
    pub(crate) fn compact(&self, delta: &DeltaOverlay, metrics: &mut JoinMetrics) -> Self {
        let add_copies = delta_sorted_copies(&self.quantizer, &self.shifts, delta);
        let copies = self
            .copies
            .iter()
            .zip(&add_copies)
            .map(|(frozen, adds)| {
                let dims = frozen.coords.dims();
                let merged_len = frozen.z.len() - delta.tombstones_len() + adds.z.len();
                let mut z = Vec::with_capacity(merged_len);
                let mut ids = Vec::with_capacity(merged_len);
                let mut coords = CoordMatrix::with_capacity(dims, merged_len);
                let (mut f, mut a) = (0usize, 0usize);
                while f < frozen.z.len() || a < adds.z.len() {
                    if f < frozen.z.len() && delta.is_tombstoned(frozen.ids[f]) {
                        f += 1;
                        continue;
                    }
                    let take_frozen = match (f < frozen.z.len(), a < adds.z.len()) {
                        (true, true) => (frozen.z[f], frozen.ids[f]) <= (adds.z[a], adds.ids[a]),
                        (have_frozen, _) => have_frozen,
                    };
                    if take_frozen {
                        z.push(frozen.z[f]);
                        ids.push(frozen.ids[f]);
                        coords.push_row(frozen.coords.row(f));
                        f += 1;
                    } else {
                        z.push(adds.z[a]);
                        ids.push(adds.ids[a]);
                        coords.push_row(adds.coords.row(a));
                        a += 1;
                    }
                }
                metrics.compacted_points += z.len() as u64;
                SortedCopy { z, ids, coords }
            })
            .collect();
        Self {
            quantizer: self.quantizer.clone(),
            shifts: self.shifts.clone(),
            window: self.window,
            copies,
            mode: self.mode,
        }
    }
}

/// Builds one `(z, id)`-sorted index of the overlay's adds per shift, using
/// the prepared quantizer so delta entries live in the same z-domain as the
/// frozen copies (frozen z-values and windows stay bit-identical).
fn delta_sorted_copies(
    quantizer: &ZQuantizer,
    shifts: &[Vec<f64>],
    delta: &DeltaOverlay,
) -> Vec<SortedCopy> {
    let dims = quantizer.dims();
    shifts
        .iter()
        .map(|shift| {
            let mut entries: Vec<(ZValue, PointId, &[f64])> = delta
                .adds()
                .map(|(id, coords)| (quantizer.z_value(coords, Some(shift)), id, coords))
                .collect();
            entries.sort_unstable_by_key(|(z, id, _)| (*z, *id));
            let mut z = Vec::with_capacity(entries.len());
            let mut ids = Vec::with_capacity(entries.len());
            let mut coords = CoordMatrix::with_capacity(dims, entries.len());
            for (zv, id, row) in entries {
                z.push(zv);
                ids.push(id);
                coords.push_row(row);
            }
            SortedCopy { z, ids, coords }
        })
        .collect()
}

/// Serve reducer: the per-copy candidate windows and the distinct merge, all
/// against the resident sorted copies (merged on the fly with the delta's
/// sorted adds when an overlay is present).
struct ZknnServeReducer<'a> {
    prepared: &'a ZknnPrepared,
    k: usize,
    metric: DistanceMetric,
    /// The overlay plus its per-copy `(z, id)`-sorted add index, quantized
    /// with the prepared quantizer (see [`delta_sorted_copies`]).
    delta: Option<(Arc<DeltaOverlay>, Arc<Vec<SortedCopy>>)>,
}

impl ZknnServeReducer<'_> {
    /// The delta-merged candidate window for one probe object and one copy:
    /// the `window` live `(z, id)`-predecessors and `window` live successors
    /// of `z_r` in the virtual merge of the frozen copy (minus tombstones)
    /// and the delta adds — exactly the window a cold build over the
    /// materialized corpus scans.  Tombstoned frozen entries are skipped
    /// *without* consuming a window slot.  Returns
    /// `(frozen_kernels, delta_kernels, masked)`.
    #[allow(clippy::too_many_arguments)]
    fn merged_window(
        &self,
        r_coords: &[f64],
        z_r: ZValue,
        frozen: &SortedCopy,
        adds: &SortedCopy,
        overlay: &DeltaOverlay,
        kernel: fn(&[f64], &[f64]) -> f64,
        list: &mut NeighborList,
    ) -> (u64, u64, u64) {
        let window = self.prepared.window;
        let (mut frozen_kernels, mut delta_kernels, mut masked) = (0u64, 0u64, 0u64);
        let pos_f = frozen.z.partition_point(|z| *z < z_r);
        let pos_a = adds.z.partition_point(|z| *z < z_r);

        // Backward merge over the strict predecessors: largest (z, id) first.
        let (mut f, mut a) = (pos_f, pos_a);
        let mut taken = 0usize;
        while taken < window && (f > 0 || a > 0) {
            let take_frozen = match (f > 0, a > 0) {
                (true, true) => {
                    (frozen.z[f - 1], frozen.ids[f - 1]) >= (adds.z[a - 1], adds.ids[a - 1])
                }
                (have_frozen, _) => have_frozen,
            };
            if take_frozen {
                f -= 1;
                if overlay.is_tombstoned(frozen.ids[f]) {
                    masked += 1;
                    continue;
                }
                list.offer(frozen.ids[f], kernel(r_coords, frozen.coords.row(f)));
                frozen_kernels += 1;
            } else {
                a -= 1;
                list.offer(adds.ids[a], kernel(r_coords, adds.coords.row(a)));
                delta_kernels += 1;
            }
            taken += 1;
        }

        // Forward merge over the successors (z ≥ z_r): smallest (z, id) first.
        let (mut f, mut a) = (pos_f, pos_a);
        let mut taken = 0usize;
        while taken < window && (f < frozen.z.len() || a < adds.z.len()) {
            let take_frozen = match (f < frozen.z.len(), a < adds.z.len()) {
                (true, true) => (frozen.z[f], frozen.ids[f]) <= (adds.z[a], adds.ids[a]),
                (have_frozen, _) => have_frozen,
            };
            if take_frozen {
                if overlay.is_tombstoned(frozen.ids[f]) {
                    masked += 1;
                    f += 1;
                    continue;
                }
                list.offer(frozen.ids[f], kernel(r_coords, frozen.coords.row(f)));
                frozen_kernels += 1;
                f += 1;
            } else {
                list.offer(adds.ids[a], kernel(r_coords, adds.coords.row(a)));
                delta_kernels += 1;
                a += 1;
            }
            taken += 1;
        }
        (frozen_kernels, delta_kernels, masked)
    }
}

impl Reducer for ZknnServeReducer<'_> {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = Vec<geom::Neighbor>;

    fn reduce(
        &self,
        _key: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, Vec<geom::Neighbor>>,
    ) {
        let mode = self.prepared.mode;
        // The delta-merged windows interleave frozen and add rows, so they
        // stay pairwise; in a non-exact mode they use the fast (reassociated)
        // scalar kernel to match the batch kernels' accumulation style.
        let kernel = if mode.is_exact() {
            self.metric.kernel()
        } else {
            self.metric.fast_kernel()
        };
        let batch = self.metric.batch_rank_kernel();
        let dims = self.prepared.quantizer.dims();
        let mut ranks: Vec<f64> = Vec::new();
        let window = self.prepared.window;
        for value in values {
            let r_obj = value.decode().point;
            let mut lists = Vec::with_capacity(self.prepared.copies.len());
            let mut computations = 0u64;
            let mut delta_computations = 0u64;
            let mut masked = 0u64;
            for (i, (copy, shift)) in self
                .prepared
                .copies
                .iter()
                .zip(&self.prepared.shifts)
                .enumerate()
            {
                let z_r = self.prepared.quantizer.z_value(&r_obj.coords, Some(shift));
                let mut list = NeighborList::new(self.k);
                match &self.delta {
                    None => {
                        let pos = copy.z.partition_point(|z| *z < z_r);
                        let lo = pos.saturating_sub(window);
                        let hi = (pos + window).min(copy.z.len());
                        if mode.is_exact() {
                            for idx in lo..hi {
                                list.offer(
                                    copy.ids[idx],
                                    kernel(&r_obj.coords, copy.coords.row(idx)),
                                );
                            }
                        } else {
                            // One contiguous run of sorted-S rows: a single
                            // batch call plus the monotone rank→distance map.
                            let m = hi - lo;
                            if ranks.len() < m {
                                ranks.resize(m, 0.0);
                            }
                            batch(
                                &r_obj.coords,
                                &copy.coords.as_slice()[lo * dims..hi * dims],
                                dims,
                                &mut ranks[..m],
                            );
                            self.metric.ranks_to_distances(&mut ranks[..m]);
                            for (off, rank) in ranks[..m].iter().enumerate() {
                                list.offer(copy.ids[lo + off], *rank);
                            }
                        }
                        computations += (hi - lo) as u64;
                    }
                    Some((overlay, add_copies)) => {
                        let (fk, dk, m) = self.merged_window(
                            &r_obj.coords,
                            z_r,
                            copy,
                            &add_copies[i],
                            overlay,
                            kernel,
                            &mut list,
                        );
                        computations += fk;
                        delta_computations += dk;
                        masked += m;
                    }
                }
                lists.push(NeighborListValue::new(list.into_sorted()));
            }
            ctx.counters()
                .add(counters::DISTANCE_COMPUTATIONS, computations);
            if self.delta.is_some() {
                ctx.counters()
                    .add(counters::DELTA_PROBE_COMPUTATIONS, delta_computations);
                ctx.counters().add(counters::TOMBSTONE_MASKED, masked);
            }
            ctx.emit(r_obj.id, merge_distinct_candidates(&lists, self.k));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::NestedLoopJoin;
    use datagen::{gaussian_clusters, uniform, ClusterConfig};
    use proptest::prelude::*;

    fn clustered(n: usize, dims: usize, seed: u64) -> PointSet {
        gaussian_clusters(
            &ClusterConfig {
                n_points: n,
                dims,
                n_clusters: 5,
                std_dev: 5.0,
                extent: 150.0,
                skew: 0.5,
            },
            seed,
        )
    }

    fn quality(r: &PointSet, s: &PointSet, k: usize, config: ZknnConfig) -> (f64, f64) {
        let metric = DistanceMetric::Euclidean;
        let exact = NestedLoopJoin.join(r, s, k, metric).unwrap();
        let got = Zknn::new(config).join(r, s, k, metric).unwrap();
        assert_eq!(got.rows.len(), r.len(), "every r must receive a row");
        for row in &got.rows {
            assert!(row.neighbors.len() <= k);
            assert!(row
                .neighbors
                .windows(2)
                .all(|w| w[0].distance <= w[1].distance));
        }
        let q = got.quality_against(&exact);
        (q.recall, q.distance_ratio)
    }

    #[test]
    fn high_recall_on_clustered_2d_data() {
        let r = clustered(300, 2, 1);
        let s = clustered(350, 2, 2);
        let (recall, ratio) = quality(&r, &s, 10, ZknnConfig::default());
        assert!(recall >= 0.9, "recall {recall}");
        assert!((1.0..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_shift_copies_do_not_hurt_recall() {
        let r = uniform(250, 3, 100.0, 3);
        let s = uniform(250, 3, 100.0, 4);
        let (r1, _) = quality(
            &r,
            &s,
            5,
            ZknnConfig {
                shift_copies: 1,
                ..Default::default()
            },
        );
        let (r4, _) = quality(
            &r,
            &s,
            5,
            ZknnConfig {
                shift_copies: 4,
                ..Default::default()
            },
        );
        assert!(
            r4 >= r1 - 1e-9,
            "recall must not degrade with more copies: {r1} -> {r4}"
        );
        assert!(r4 >= 0.9, "recall at 4 copies: {r4}");
    }

    #[test]
    fn exact_when_k_covers_s() {
        // With k ≥ |S| every candidate window spans all of S: the result is
        // exact by construction.
        let r = uniform(40, 2, 30.0, 6);
        let s = uniform(7, 2, 30.0, 7);
        let exact = NestedLoopJoin
            .join(&r, &s, 12, DistanceMetric::Euclidean)
            .unwrap();
        let got = Zknn::default()
            .join(&r, &s, 12, DistanceMetric::Euclidean)
            .unwrap();
        assert!(
            got.matches(&exact, 1e-9),
            "{:?}",
            got.mismatch_against(&exact, 1e-9)
        );
    }

    #[test]
    fn exact_on_identical_points() {
        // All-identical coordinates collapse to one z-value; the id tiebreak
        // still yields k candidates at distance 0.
        let data = PointSet::from_coords(vec![vec![3.0, 3.0]; 25]);
        let exact = NestedLoopJoin
            .join(&data, &data, 4, DistanceMetric::Euclidean)
            .unwrap();
        let got = Zknn::default()
            .join(&data, &data, 4, DistanceMetric::Euclidean)
            .unwrap();
        assert!(got.matches(&exact, 1e-9));
    }

    #[test]
    fn shuffles_far_less_than_broadcast_and_computes_far_less_than_exact() {
        let r = clustered(400, 2, 8);
        let s = clustered(400, 2, 9);
        let k = 10;
        let res = Zknn::default()
            .join(&r, &s, k, DistanceMetric::Euclidean)
            .unwrap();
        let m = &res.metrics;
        // Each R object costs at most α·2·window·k distance computations —
        // a constant per object, unlike the exact algorithms.
        let defaults = ZknnConfig::default();
        let per_object = (defaults.shift_copies * 2 * defaults.z_window * k) as u64;
        assert!(m.distance_computations <= r.len() as u64 * per_object);
        assert!(m.distance_computations < (r.len() * s.len()) as u64 / 2);
        // α copies of R; α copies of S plus boundary padding.
        let alpha = defaults.shift_copies as u64;
        assert_eq!(m.r_records_shuffled, alpha * r.len() as u64);
        assert!(m.s_records_shuffled >= alpha * s.len() as u64);
        assert!(m.shuffle_bytes > 0);
        // Both jobs report phases.
        assert!(m.phase(phases::KNN_JOIN) > std::time::Duration::ZERO);
        assert!(m
            .phase_times
            .iter()
            .any(|(n, _)| n == phases::RESULT_MERGING));
    }

    #[test]
    fn fast_and_rank_f32_modes_match_the_exact_mode_run() {
        // The candidate windows are mode-independent (same z-order, same
        // cuts), so a Fast/RankF32 run must reproduce the Exact-mode run's
        // rows — only the accumulation order of each distance differs.
        let r = clustered(180, 3, 41);
        let s = clustered(220, 3, 42);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Chebyshev,
        ] {
            let exact = Zknn::default().join(&r, &s, 6, metric).unwrap();
            for mode in [KernelMode::Fast, KernelMode::RankF32] {
                let got = Zknn::new(ZknnConfig {
                    kernel_mode: mode,
                    ..Default::default()
                })
                .join(&r, &s, 6, metric)
                .unwrap();
                assert!(
                    got.matches(&exact, 1e-9),
                    "{metric:?}/{mode:?}: {:?}",
                    got.mismatch_against(&exact, 1e-9)
                );
                assert_eq!(
                    got.metrics.distance_computations, exact.metrics.distance_computations,
                    "{metric:?}/{mode:?}: candidate windows must be mode-independent"
                );
            }
        }
    }

    #[test]
    fn merge_breaks_exact_distance_ties_deterministically() {
        // Two copies each contribute a different candidate at the same
        // distance; with k = 1 only one survives, and it must be the same
        // one (smallest id) on every run — not whichever a hash map yields
        // first.
        let from_copy_a = NeighborListValue::new(vec![geom::Neighbor::new(7, 2.5)]);
        let from_copy_b = NeighborListValue::new(vec![geom::Neighbor::new(3, 2.5)]);
        for _ in 0..32 {
            let merged = merge_distinct_candidates(&[from_copy_a.clone(), from_copy_b.clone()], 1);
            assert_eq!(merged.len(), 1);
            assert_eq!(merged[0].id, 3);
        }
        // Duplicates of one id keep the smaller distance, not a second slot.
        let dup = NeighborListValue::new(vec![geom::Neighbor::new(7, 1.0)]);
        let merged = merge_distinct_candidates(&[from_copy_a, dup], 2);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].distance, 1.0);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let r = clustered(200, 3, 10);
        let s = clustered(220, 3, 11);
        let a = Zknn::default()
            .join(&r, &s, 5, DistanceMetric::Euclidean)
            .unwrap();
        let b = Zknn::default()
            .join(&r, &s, 5, DistanceMetric::Euclidean)
            .unwrap();
        assert!(a.matches(&b, 0.0));
        assert_eq!(
            a.metrics.distance_computations,
            b.metrics.distance_computations
        );
        assert_eq!(a.metrics.shuffle_bytes, b.metrics.shuffle_bytes);
        // A different shift seed may legitimately produce different
        // candidates (still high recall, checked elsewhere).
        let c = Zknn::new(ZknnConfig {
            seed: 999,
            ..Default::default()
        })
        .join(&r, &s, 5, DistanceMetric::Euclidean)
        .unwrap();
        assert_eq!(c.rows.len(), r.len());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let r = uniform(10, 2, 1.0, 0);
        let s = uniform(10, 2, 1.0, 1);
        let run = |config: ZknnConfig| {
            Zknn::new(config)
                .join(&r, &s, 2, DistanceMetric::Euclidean)
                .unwrap_err()
        };
        assert!(matches!(
            run(ZknnConfig {
                shift_copies: 0,
                ..Default::default()
            }),
            JoinError::InvalidConfig(_)
        ));
        assert!(matches!(
            run(ZknnConfig {
                quantization_bits: 0,
                ..Default::default()
            }),
            JoinError::InvalidConfig(_)
        ));
        assert!(matches!(
            run(ZknnConfig {
                quantization_bits: 33,
                ..Default::default()
            }),
            JoinError::InvalidConfig(_)
        ));
        assert!(matches!(
            run(ZknnConfig {
                reducers: 0,
                ..Default::default()
            }),
            JoinError::ZeroReducers
        ));
        assert!(matches!(
            run(ZknnConfig {
                map_tasks: 0,
                ..Default::default()
            }),
            JoinError::ZeroMapTasks
        ));
        // 12 dims × 32 bits = 384 > 256 interleaved bits.
        let wide = uniform(10, 12, 1.0, 2);
        let err = Zknn::new(ZknnConfig {
            quantization_bits: 32,
            ..Default::default()
        })
        .join(&wide, &wide, 2, DistanceMetric::Euclidean)
        .unwrap_err();
        assert!(matches!(err, JoinError::InvalidConfig(_)), "{err}");
        assert_eq!(Zknn::default().name(), "H-zkNNJ");
        assert_eq!(Zknn::default().config().shift_copies, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// The candidate sets are approximate but the plumbing is not: every
        /// run yields one row per R object with at most k sorted true-distance
        /// neighbours, and recall against the oracle stays high.
        #[test]
        fn recall_stays_high_on_random_workloads(
            n_r in 20usize..120,
            n_s in 20usize..120,
            k in 1usize..8,
            reducers in 1usize..10,
            seed in 0u64..50,
        ) {
            let r = uniform(n_r, 2, 80.0, seed);
            let s = uniform(n_s, 2, 80.0, seed ^ 0x5A);
            let metric = DistanceMetric::Euclidean;
            let exact = NestedLoopJoin.join(&r, &s, k, metric).unwrap();
            let got = Zknn::new(ZknnConfig { reducers, map_tasks: 3, ..Default::default() })
                .join(&r, &s, k, metric)
                .unwrap();
            prop_assert_eq!(got.rows.len(), r.len());
            let q = got.quality_against(&exact);
            prop_assert!(q.recall >= 0.8, "recall {} below threshold", q.recall);
            prop_assert!(q.distance_ratio >= 1.0 - 1e-9);
        }
    }
}
