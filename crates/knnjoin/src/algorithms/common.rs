//! Pieces shared by the MapReduce join algorithms: the serialised record
//! value type used across shuffles, the neighbour-list value type used by the
//! merge jobs, and counter names.

use crate::bounds::{hyperplane_bound, theorem2_window};
use crate::summary::SummaryTables;
use geom::{
    CoordMatrix, DistanceMetric, Neighbor, NeighborList, Point, PointId, Record, RecordKind,
};
use mapreduce::ByteSize;
use std::collections::BTreeMap;

/// Counter names used by the join jobs (defined next to [`crate::JoinMetrics`],
/// which aggregates them via `absorb_job`).
pub use crate::metrics::counters;

/// An intermediate value carrying one serialised object record.
///
/// Hadoop moves serialised bytes through its shuffle; we do the same so the
/// byte accounting of the `mapreduce` crate reflects exactly what the paper's
/// shuffling-cost metric measures.  The wrapper exists to give the encoded
/// record a [`ByteSize`] implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedRecord(pub bytes::Bytes);

impl EncodedRecord {
    /// Encodes a record.
    pub fn encode(record: &Record) -> Self {
        Self(record.encode())
    }

    /// Encodes a record straight from its parts, borrowing the point.
    ///
    /// Bit-identical to `encode(&Record::new(kind, partition, dist,
    /// point.clone()))` without the intermediate clone — the input builders
    /// of the map phase use this so preparing `R ∪ S` costs one encoded
    /// buffer per object instead of a full second copy of the datasets.
    pub fn from_parts(
        kind: RecordKind,
        partition: u32,
        pivot_distance: f64,
        point: &Point,
    ) -> Self {
        Self(Record::encode_parts(kind, partition, pivot_distance, point))
    }

    /// Decodes the record.
    ///
    /// # Panics
    /// Panics if the buffer is corrupt; intermediate data is produced by our
    /// own mappers, so corruption indicates a bug rather than bad input.
    pub fn decode(&self) -> Record {
        Record::decode(&self.0).expect("corrupt intermediate record")
    }
}

impl ByteSize for EncodedRecord {
    fn byte_size(&self) -> usize {
        self.0.len()
    }
}

/// A partial kNN list for one `R` object, shuffled by the merge job of the
/// block-based algorithms (H-BRJ, PBJ).
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborListValue {
    /// Candidate neighbours (at most `k` of them) found by one reducer cell.
    pub neighbors: Vec<Neighbor>,
}

impl NeighborListValue {
    /// Wraps a candidate list.
    pub fn new(neighbors: Vec<Neighbor>) -> Self {
        Self { neighbors }
    }
}

impl ByteSize for NeighborListValue {
    fn byte_size(&self) -> usize {
        // r-id is the key; each neighbour is an (id, distance) pair.
        4 + self.neighbors.len() * (8 + 8)
    }
}

/// Merges several partial candidate lists into the final `k` nearest
/// neighbours of one `R` object.
pub fn merge_neighbor_lists(lists: &[NeighborListValue], k: usize) -> Vec<Neighbor> {
    let mut acc = geom::NeighborList::new(k);
    for list in lists {
        for n in &list.neighbors {
            acc.offer(n.id, n.distance);
        }
    }
    acc.into_sorted()
}

/// The key type of the merge job: the id of the `R` object.
#[allow(dead_code)]
pub type RKey = PointId;

/// One partition's objects in flat structure-of-data layout: coordinate rows
/// in a contiguous [`CoordMatrix`] with ids and pivot distances in parallel
/// vectors.  This is what the Algorithm 3 reducers scan: the candidate loop
/// walks three dense arrays instead of chasing a `Point` heap allocation per
/// candidate.
#[derive(Debug, Clone, Default)]
pub struct FlatPartition {
    /// Object ids, parallel to the coordinate rows.
    pub ids: Vec<PointId>,
    /// Object-to-pivot distances, parallel to the coordinate rows.
    pub pivot_dists: Vec<f64>,
    /// Coordinates, one row per object.
    pub coords: CoordMatrix,
}

impl FlatPartition {
    /// Creates an empty partition for the given dimensionality.
    pub fn new(dims: usize) -> Self {
        Self {
            ids: Vec::new(),
            pivot_dists: Vec::new(),
            coords: CoordMatrix::new(dims),
        }
    }

    /// Appends one object.
    pub fn push(&mut self, point: &Point, pivot_dist: f64) {
        self.ids.push(point.id);
        self.pivot_dists.push(pivot_dist);
        self.coords.push_row(&point.coords);
    }

    /// Number of objects held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the partition holds no objects.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The per-partition views an Algorithm 3 reducer works from: `R` objects
/// grouped by partition, and the received `S` subset in flat
/// [`FlatPartition`] storage.
pub(crate) type ReducerPartitions = (
    BTreeMap<usize, Vec<(Point, f64)>>,
    BTreeMap<usize, FlatPartition>,
);

/// Decodes a reducer's received records and splits them by kind and
/// partition (Algorithm 3 line 13), preserving arrival order: `R` objects
/// stay as owned points (each is a query, visited once), while `S` objects
/// are flattened straight into the columnar layout the candidate scan reads.
/// Shared by the PGBJ group reducer and the PBJ cell reducer.
pub(crate) fn split_reducer_records(values: &[EncodedRecord], dims: usize) -> ReducerPartitions {
    let mut r_parts: BTreeMap<usize, Vec<(Point, f64)>> = BTreeMap::new();
    let mut s_parts: BTreeMap<usize, FlatPartition> = BTreeMap::new();
    for value in values {
        let record = value.decode();
        match record.kind {
            RecordKind::R => r_parts
                .entry(record.partition as usize)
                .or_default()
                .push((record.point, record.pivot_distance)),
            RecordKind::S => s_parts
                .entry(record.partition as usize)
                .or_insert_with(|| FlatPartition::new(dims))
                .push(&record.point, record.pivot_distance),
        }
    }
    (r_parts, s_parts)
}

/// The pruned candidate scan at the heart of Algorithm 3 (lines 16–25),
/// shared by the PGBJ reducer and the PBJ cell reducer.
///
/// For one `R` object `r` (belonging to partition `r_partition`, at distance
/// `r_pivot_dist` from its pivot), scans the received `S` objects — grouped by
/// their partition in flat [`FlatPartition`] layout and visited in the order
/// `s_order` (ascending pivot distance from `p_i`) — pruning with Corollary 1,
/// Theorem 2 and the running threshold `θ = min(θ_i, current kth distance)`.
///
/// The metric's kernel is hoisted out of the loops (no enum dispatch per
/// candidate).  All threshold comparisons stay in true-distance space: θ and
/// the Theorem 2 window are derived from triangle-inequality bounds over true
/// distances, and mixing them with squared ranks could flip a comparison at
/// the last ulp (see ARCHITECTURE.md).
///
/// Returns the `k` best neighbours found and the number of distance
/// computations spent (object-to-object plus object-to-pivot, per the paper's
/// selectivity definition).
#[allow(clippy::too_many_arguments)]
pub fn bounded_knn_scan(
    r_obj: &Point,
    r_pivot_dist: f64,
    r_partition: usize,
    s_parts: &BTreeMap<usize, FlatPartition>,
    s_order: &[usize],
    tables: &SummaryTables,
    theta_i: f64,
    k: usize,
    metric: DistanceMetric,
) -> (Vec<Neighbor>, u64) {
    let kernel = metric.kernel();
    let mut neighbors = NeighborList::new(k);
    let mut computations = 0u64;
    for &j in s_order {
        let theta = theta_i.min(neighbors.threshold());
        let pivot_dist = tables.pivot_distance(r_partition, j);
        // Distance from r to the pivot of partition j; pivots count as
        // objects in the paper's selectivity metric.
        let d_r_pj = kernel(&r_obj.coords, &tables.pivots[j].coords);
        computations += 1;
        // Corollary 1: skip the whole partition if the hyperplane between
        // p_i and p_j is already farther away than θ.
        if j != r_partition
            && theta.is_finite()
            && hyperplane_bound(r_pivot_dist, d_r_pj, pivot_dist, metric) > theta
        {
            continue;
        }
        // Theorem 2: only objects whose own pivot distance falls inside this
        // window can possibly be within θ of r.
        let summary = &tables.s_summaries[j];
        let (lo, hi) = theorem2_window(summary.lower, summary.upper, d_r_pj, theta);
        if lo > hi {
            continue;
        }
        if let Some(s_bucket) = s_parts.get(&j) {
            for idx in 0..s_bucket.len() {
                let s_pivot_dist = s_bucket.pivot_dists[idx];
                if s_pivot_dist < lo || s_pivot_dist > hi {
                    continue;
                }
                // Re-check against the current (shrinking) θ using the
                // triangle inequality |r, s| ≥ ||p_j, s| − |p_j, r||.
                let theta_now = theta_i.min(neighbors.threshold());
                if (s_pivot_dist - d_r_pj).abs() > theta_now {
                    continue;
                }
                let d = kernel(&r_obj.coords, s_bucket.coords.row(idx));
                computations += 1;
                neighbors.offer(s_bucket.ids[idx], d);
            }
        }
    }
    (neighbors.into_sorted(), computations)
}

/// Sorts the partition ids in `s_parts` by ascending pivot distance from the
/// pivot of `r_partition` (Algorithm 3 line 14).
pub fn order_s_partitions(
    s_parts: &BTreeMap<usize, FlatPartition>,
    r_partition: usize,
    tables: &SummaryTables,
) -> Vec<usize> {
    let mut order: Vec<usize> = s_parts.keys().copied().collect();
    order.sort_by(|&a, &b| {
        tables
            .pivot_distance(r_partition, a)
            .partial_cmp(&tables.pivot_distance(r_partition, b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Point, RecordKind};

    #[test]
    fn encoded_record_roundtrip_and_size() {
        let record = Record::new(RecordKind::S, 3, 1.5, Point::new(9, vec![1.0, 2.0]));
        let enc = EncodedRecord::encode(&record);
        assert_eq!(enc.byte_size(), record.encoded_len());
        assert_eq!(enc.decode(), record);
        // The borrowed constructor produces the identical bytes (and thus
        // identical shuffle accounting) without cloning the point.
        let borrowed = EncodedRecord::from_parts(RecordKind::S, 3, 1.5, &record.point);
        assert_eq!(borrowed, enc);
    }

    #[test]
    fn neighbor_list_value_size() {
        let v = NeighborListValue::new(vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.5)]);
        assert_eq!(v.byte_size(), 4 + 2 * 16);
    }

    #[test]
    fn merging_partial_lists_keeps_global_k_best() {
        let a = NeighborListValue::new(vec![Neighbor::new(1, 5.0), Neighbor::new(2, 1.0)]);
        let b = NeighborListValue::new(vec![Neighbor::new(3, 0.5), Neighbor::new(4, 9.0)]);
        let merged = merge_neighbor_lists(&[a, b], 2);
        let ids: Vec<u64> = merged.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn merging_handles_duplicates_across_blocks() {
        // The same S object can be seen by several reducer cells; duplicates
        // must not crowd out distinct neighbours... they are kept as-is since
        // block algorithms never see the same (r, s) pair twice, but merging
        // is still well-defined.
        let a = NeighborListValue::new(vec![Neighbor::new(1, 1.0)]);
        let b = NeighborListValue::new(vec![Neighbor::new(2, 2.0)]);
        let merged = merge_neighbor_lists(&[a.clone(), b, a], 3);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].id, 1);
    }
}
