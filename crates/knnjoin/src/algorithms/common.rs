//! Pieces shared by the MapReduce join algorithms: the serialised record
//! value type used across shuffles, the neighbour-list value type used by the
//! merge jobs, and counter names.

use crate::bounds::{hyperplane_bound, theorem2_window};
use crate::delta::DeltaOverlay;
use crate::metrics::{phases, JoinMetrics};
use crate::partition::VoronoiPartitioner;
use crate::result::{JoinError, JoinRow};
use crate::summary::{
    build_s_summaries, pivot_distance_matrix, RPartitionSummary, SPartitionSummary, SummaryTables,
};
use geom::kernels::PROBE_TILE;
use geom::{
    CoordMatrix, DistanceMetric, KernelMode, Neighbor, NeighborList, Point, PointId, PointSet,
    Record, RecordKind,
};
use mapreduce::{
    ByteSize, IdentityPartitioner, JobBuilder, MapContext, Mapper, ReduceContext, Reducer,
};
use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Counter names used by the join jobs (defined next to [`crate::JoinMetrics`],
/// which aggregates them via `absorb_job`).
pub use crate::metrics::counters;

/// An intermediate value carrying one serialised object record.
///
/// Hadoop moves serialised bytes through its shuffle; we do the same so the
/// byte accounting of the `mapreduce` crate reflects exactly what the paper's
/// shuffling-cost metric measures.  The wrapper exists to give the encoded
/// record a [`ByteSize`] implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedRecord(pub bytes::Bytes);

impl EncodedRecord {
    /// Encodes a record.
    pub fn encode(record: &Record) -> Self {
        Self(record.encode())
    }

    /// Encodes a record straight from its parts, borrowing the point.
    ///
    /// Bit-identical to `encode(&Record::new(kind, partition, dist,
    /// point.clone()))` without the intermediate clone — the input builders
    /// of the map phase use this so preparing `R ∪ S` costs one encoded
    /// buffer per object instead of a full second copy of the datasets.
    pub fn from_parts(
        kind: RecordKind,
        partition: u32,
        pivot_distance: f64,
        point: &Point,
    ) -> Self {
        Self(Record::encode_parts(kind, partition, pivot_distance, point))
    }

    /// Decodes the record.
    ///
    /// # Panics
    /// Panics if the buffer is corrupt; intermediate data is produced by our
    /// own mappers, so corruption indicates a bug rather than bad input.
    pub fn decode(&self) -> Record {
        Record::decode(&self.0).expect("corrupt intermediate record")
    }
}

impl ByteSize for EncodedRecord {
    fn byte_size(&self) -> usize {
        self.0.len()
    }
}

/// A partial kNN list for one `R` object, shuffled by the merge job of the
/// block-based algorithms (H-BRJ, PBJ).
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborListValue {
    /// Candidate neighbours (at most `k` of them) found by one reducer cell.
    pub neighbors: Vec<Neighbor>,
}

impl NeighborListValue {
    /// Wraps a candidate list.
    pub fn new(neighbors: Vec<Neighbor>) -> Self {
        Self { neighbors }
    }
}

impl ByteSize for NeighborListValue {
    fn byte_size(&self) -> usize {
        // r-id is the key; each neighbour is an (id, distance) pair.
        4 + self.neighbors.len() * (8 + 8)
    }
}

/// Merges several partial candidate lists into the final `k` nearest
/// neighbours of one `R` object.
pub fn merge_neighbor_lists(lists: &[NeighborListValue], k: usize) -> Vec<Neighbor> {
    let mut acc = geom::NeighborList::new(k);
    for list in lists {
        for n in &list.neighbors {
            acc.offer(n.id, n.distance);
        }
    }
    acc.into_sorted()
}

/// The key type of the merge job: the id of the `R` object.
#[allow(dead_code)]
pub type RKey = PointId;

/// One partition's objects in flat structure-of-data layout: coordinate rows
/// in a contiguous [`CoordMatrix`] with ids and pivot distances in parallel
/// vectors.  This is what the Algorithm 3 reducers scan: the candidate loop
/// walks three dense arrays instead of chasing a `Point` heap allocation per
/// candidate.
#[derive(Debug, Clone, Default)]
pub struct FlatPartition {
    /// Object ids, parallel to the coordinate rows.
    pub ids: Vec<PointId>,
    /// Object-to-pivot distances, parallel to the coordinate rows.
    pub pivot_dists: Vec<f64>,
    /// Coordinates, one row per object.
    pub coords: CoordMatrix,
}

impl FlatPartition {
    /// Creates an empty partition for the given dimensionality.
    pub fn new(dims: usize) -> Self {
        Self {
            ids: Vec::new(),
            pivot_dists: Vec::new(),
            coords: CoordMatrix::new(dims),
        }
    }

    /// Appends one object.
    pub fn push(&mut self, point: &Point, pivot_dist: f64) {
        self.ids.push(point.id);
        self.pivot_dists.push(pivot_dist);
        self.coords.push_row(&point.coords);
    }

    /// Number of objects held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the partition holds no objects.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The per-partition views an Algorithm 3 reducer works from: `R` objects
/// grouped by partition, and the received `S` subset in flat
/// [`FlatPartition`] storage.
pub(crate) type ReducerPartitions = (
    BTreeMap<usize, Vec<(Point, f64)>>,
    BTreeMap<usize, FlatPartition>,
);

/// Decodes a reducer's received records and splits them by kind and
/// partition (Algorithm 3 line 13), preserving arrival order: `R` objects
/// stay as owned points (each is a query, visited once), while `S` objects
/// are flattened straight into the columnar layout the candidate scan reads.
/// Shared by the PGBJ group reducer and the PBJ cell reducer.
pub(crate) fn split_reducer_records(values: &[EncodedRecord], dims: usize) -> ReducerPartitions {
    let mut r_parts: BTreeMap<usize, Vec<(Point, f64)>> = BTreeMap::new();
    let mut s_parts: BTreeMap<usize, FlatPartition> = BTreeMap::new();
    for value in values {
        let record = value.decode();
        match record.kind {
            RecordKind::R => r_parts
                .entry(record.partition as usize)
                .or_default()
                .push((record.point, record.pivot_distance)),
            RecordKind::S => s_parts
                .entry(record.partition as usize)
                .or_insert_with(|| FlatPartition::new(dims))
                .push(&record.point, record.pivot_distance),
        }
    }
    (r_parts, s_parts)
}

/// The pruned candidate scan at the heart of Algorithm 3 (lines 16–25),
/// shared by the PGBJ reducer and the PBJ cell reducer.
///
/// For one `R` object `r` (belonging to partition `r_partition`, at distance
/// `r_pivot_dist` from its pivot), scans the received `S` objects — grouped by
/// their partition in flat [`FlatPartition`] layout and visited in the order
/// `s_order` (ascending pivot distance from `p_i`) — pruning with Corollary 1,
/// Theorem 2 and the running threshold `θ = min(θ_i, current kth distance)`.
///
/// The metric's kernel is hoisted out of the loops (no enum dispatch per
/// candidate).  All threshold comparisons stay in true-distance space: θ and
/// the Theorem 2 window are derived from triangle-inequality bounds over true
/// distances, and mixing them with squared ranks could flip a comparison at
/// the last ulp (see ARCHITECTURE.md).
///
/// Returns the `k` best neighbours found and the number of distance
/// computations spent (object-to-object plus object-to-pivot, per the paper's
/// selectivity definition).
#[allow(clippy::too_many_arguments)]
pub fn bounded_knn_scan<P: Borrow<FlatPartition>>(
    r_obj: &Point,
    r_pivot_dist: f64,
    r_partition: usize,
    s_parts: &BTreeMap<usize, P>,
    s_order: &[usize],
    tables: &SummaryTables,
    theta_i: f64,
    k: usize,
    metric: DistanceMetric,
) -> (Vec<Neighbor>, u64) {
    let (neighbors, counts) = bounded_knn_scan_delta(
        r_obj,
        r_pivot_dist,
        r_partition,
        s_parts,
        s_order,
        tables,
        theta_i,
        k,
        metric,
        None,
    );
    (neighbors, counts.frozen)
}

/// Distance-computation breakdown of one delta-aware candidate scan.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ScanCounts {
    /// Kernel evaluations against frozen structures (objects or pivots).
    pub frozen: u64,
    /// Kernel evaluations against the delta memtable's added points.
    pub delta: u64,
    /// Frozen candidates discarded because their id is tombstoned.
    pub masked: u64,
}

/// [`bounded_knn_scan`] extended with the S-delta memtable of a mutated
/// [`crate::PreparedJoin`]: the overlay's added points are offered into the
/// accumulator *first* (tightening the running θ before any frozen candidate
/// is scanned), and tombstoned frozen candidates are masked just before their
/// kernel evaluation.  With `delta == None` the scan is bit-for-bit the
/// frozen-only Algorithm 3 loop.
///
/// Correctness note for callers: the per-partition `θ_i` bound is derived
/// from the frozen `T_S` table, whose guarantee ("partition `i` alone holds
/// `k` objects within `θ_i`") deletions can break — pass `θ_i = ∞` whenever
/// the overlay carries tombstones.  Added points never invalidate `θ_i`;
/// they only shrink the true kth distance.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bounded_knn_scan_delta<P: Borrow<FlatPartition>>(
    r_obj: &Point,
    r_pivot_dist: f64,
    r_partition: usize,
    s_parts: &BTreeMap<usize, P>,
    s_order: &[usize],
    tables: &SummaryTables,
    theta_i: f64,
    k: usize,
    metric: DistanceMetric,
    delta: Option<&DeltaOverlay>,
) -> (Vec<Neighbor>, ScanCounts) {
    let kernel = metric.kernel();
    let mut neighbors = NeighborList::new(k);
    let mut counts = ScanCounts::default();
    if let Some(overlay) = delta {
        for (id, coords) in overlay.adds() {
            let d = kernel(&r_obj.coords, coords);
            counts.delta += 1;
            neighbors.offer(id, d);
        }
    }
    for &j in s_order {
        let theta = theta_i.min(neighbors.threshold());
        let pivot_dist = tables.pivot_distance(r_partition, j);
        // Distance from r to the pivot of partition j; pivots count as
        // objects in the paper's selectivity metric.
        let d_r_pj = kernel(&r_obj.coords, &tables.pivots[j].coords);
        counts.frozen += 1;
        // Corollary 1: skip the whole partition if the hyperplane between
        // p_i and p_j is already farther away than θ.
        if j != r_partition
            && theta.is_finite()
            && hyperplane_bound(r_pivot_dist, d_r_pj, pivot_dist, metric) > theta
        {
            continue;
        }
        // Theorem 2: only objects whose own pivot distance falls inside this
        // window can possibly be within θ of r.
        let summary = &tables.s_summaries[j];
        let (lo, hi) = theorem2_window(summary.lower, summary.upper, d_r_pj, theta);
        if lo > hi {
            continue;
        }
        if let Some(s_bucket) = s_parts.get(&j) {
            let s_bucket = s_bucket.borrow();
            for idx in 0..s_bucket.len() {
                let s_pivot_dist = s_bucket.pivot_dists[idx];
                if s_pivot_dist < lo || s_pivot_dist > hi {
                    continue;
                }
                // Re-check against the current (shrinking) θ using the
                // triangle inequality |r, s| ≥ ||p_j, s| − |p_j, r||.
                let theta_now = theta_i.min(neighbors.threshold());
                if (s_pivot_dist - d_r_pj).abs() > theta_now {
                    continue;
                }
                if let Some(overlay) = delta {
                    if overlay.is_tombstoned(s_bucket.ids[idx]) {
                        counts.masked += 1;
                        continue;
                    }
                }
                let d = kernel(&r_obj.coords, s_bucket.coords.row(idx));
                counts.frozen += 1;
                neighbors.offer(s_bucket.ids[idx], d);
            }
        }
    }
    (neighbors.into_sorted(), counts)
}

/// The delta overlay's added points gathered into flat columnar layout so the
/// `Fast`-mode scans can stream them through the batch kernels instead of
/// chasing one `BTreeMap` node per add.  Built once per probe (the overlay is
/// immutable between mutations), iterating `adds()` in its deterministic
/// ascending-id order.
#[derive(Debug, Clone)]
pub(crate) struct DeltaBlock {
    /// Added ids, parallel to the coordinate rows.
    pub ids: Vec<PointId>,
    /// Added coordinates, one row per add.
    pub coords: CoordMatrix,
}

impl DeltaBlock {
    /// Gathers the overlay's adds; `None` when there is nothing to gather.
    pub(crate) fn from_overlay(overlay: &DeltaOverlay, dims: usize) -> Option<Self> {
        if overlay.adds_len() == 0 {
            return None;
        }
        let mut ids = Vec::with_capacity(overlay.adds_len());
        let mut coords = CoordMatrix::new(dims);
        for (id, row) in overlay.adds() {
            ids.push(id);
            coords.push_row(row);
        }
        Some(Self { ids, coords })
    }
}

/// The `Fast`-mode twin of [`bounded_knn_scan_delta`]: identical bucket-level
/// pruning (Corollary 1, Theorem 2 window, `θ_i`), but candidates inside a
/// visited bucket are evaluated through the multi-accumulator *batch* rank
/// kernels in [`PROBE_TILE`]-row tiles over the contiguous `CoordMatrix`
/// slice, then converted to true distances in one sweep.
///
/// Differences from the exact scan, all answer-preserving:
/// * tile rows outside the Theorem 2 pivot-distance window may still be
///   evaluated (the tile is only narrowed to its first/last in-window row) —
///   extra candidates are *offered* less often but never change the top-k;
/// * the per-candidate θ-shrink recheck is dropped — it only skips kernels,
///   never changes which distances reach the accumulator.
///
/// Both mean `Fast` counters differ from `Exact` counters (that is the point:
/// fewer branches, wider loops); results agree within accumulation-order
/// round-off (≤ 1e-9 relative, pinned by the cross-mode integration tests).
/// The threshold arithmetic stays in true-distance space throughout — only
/// the kernel evaluation itself runs in rank space.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bounded_knn_scan_tiled<P: Borrow<FlatPartition>>(
    r_obj: &Point,
    r_pivot_dist: f64,
    r_partition: usize,
    s_parts: &BTreeMap<usize, P>,
    s_order: &[usize],
    tables: &SummaryTables,
    theta_i: f64,
    k: usize,
    metric: DistanceMetric,
    delta: Option<&DeltaOverlay>,
    delta_block: Option<&DeltaBlock>,
) -> (Vec<Neighbor>, ScanCounts) {
    let kernel = metric.fast_kernel();
    let batch = metric.batch_rank_kernel();
    let dim = r_obj.coords.len();
    let mut neighbors = NeighborList::new(k);
    let mut counts = ScanCounts::default();
    let mut scratch = vec![0.0f64; PROBE_TILE];
    if let Some(block) = delta_block {
        let rows = block.coords.as_slice();
        let mut t0 = 0;
        while t0 < block.ids.len() {
            let t1 = (t0 + PROBE_TILE).min(block.ids.len());
            let m = t1 - t0;
            batch(
                &r_obj.coords,
                &rows[t0 * dim..t1 * dim],
                dim,
                &mut scratch[..m],
            );
            metric.ranks_to_distances(&mut scratch[..m]);
            counts.delta += m as u64;
            for (off, &d) in scratch[..m].iter().enumerate() {
                neighbors.offer(block.ids[t0 + off], d);
            }
            t0 = t1;
        }
    }
    for &j in s_order {
        let theta = theta_i.min(neighbors.threshold());
        let pivot_dist = tables.pivot_distance(r_partition, j);
        let d_r_pj = kernel(&r_obj.coords, &tables.pivots[j].coords);
        counts.frozen += 1;
        if j != r_partition
            && theta.is_finite()
            && hyperplane_bound(r_pivot_dist, d_r_pj, pivot_dist, metric) > theta
        {
            continue;
        }
        let summary = &tables.s_summaries[j];
        let (lo, hi) = theorem2_window(summary.lower, summary.upper, d_r_pj, theta);
        if lo > hi {
            continue;
        }
        if let Some(s_bucket) = s_parts.get(&j) {
            let s_bucket = s_bucket.borrow();
            let rows = s_bucket.coords.as_slice();
            let in_window = |idx: usize| -> bool {
                let d = s_bucket.pivot_dists[idx];
                (lo..=hi).contains(&d)
            };
            let mut t0 = 0;
            while t0 < s_bucket.len() {
                let t1 = (t0 + PROBE_TILE).min(s_bucket.len());
                // Narrow the tile to its in-window span; skip it entirely
                // when no row qualifies.
                let Some(first) = (t0..t1).find(|&i| in_window(i)) else {
                    t0 = t1;
                    continue;
                };
                let last = (first..t1).rev().find(|&i| in_window(i)).unwrap_or(first);
                let m = last + 1 - first;
                batch(
                    &r_obj.coords,
                    &rows[first * dim..(last + 1) * dim],
                    dim,
                    &mut scratch[..m],
                );
                metric.ranks_to_distances(&mut scratch[..m]);
                counts.frozen += m as u64;
                for (off, &d) in scratch[..m].iter().enumerate() {
                    let idx = first + off;
                    if !in_window(idx) {
                        continue;
                    }
                    if let Some(overlay) = delta {
                        if overlay.is_tombstoned(s_bucket.ids[idx]) {
                            counts.masked += 1;
                            continue;
                        }
                    }
                    neighbors.offer(s_bucket.ids[idx], d);
                }
                t0 = t1;
            }
        }
    }
    (neighbors.into_sorted(), counts)
}

/// Reusable per-reducer scratch for the tiled flat-block scans: one rank tile
/// (`f64`), one filter tile (`f32`) and the downcast query, allocated once
/// and reused across every probe object the reducer serves.
#[derive(Debug)]
pub(crate) struct TileScratch {
    ranks: Vec<f64>,
    ranks32: Vec<f32>,
    q32: Vec<f32>,
}

impl TileScratch {
    /// Fresh scratch sized for [`PROBE_TILE`]-row tiles.
    pub(crate) fn new() -> Self {
        Self {
            ranks: vec![0.0; PROBE_TILE],
            ranks32: vec![0.0; PROBE_TILE],
            q32: Vec::new(),
        }
    }
}

/// Multiplicative guard applied to the `f32` candidate filter's threshold in
/// `RankF32` mode: a candidate survives when its `f32` rank is below the
/// current kth rank inflated by this factor, absorbing the downcast's
/// round-off so near-threshold neighbours still reach the `f64` refinement.
/// The mode is approximate by contract (recall is *measured*, not
/// guaranteed); the guard just keeps misses to genuine f32 resolution loss.
const RANK_F32_GUARD: f32 = 1.0 + 1e-3;

/// One probe object against a flat `(ids, coords)` block — the `Fast` /
/// `RankF32` engine behind the exhaustive scanners (NestedLoop, Broadcast and
/// their prepared twins).  The block is streamed in [`PROBE_TILE`]-row tiles
/// through the batch rank kernels; the accumulator runs in rank space (rank
/// order equals distance order for every metric) and the final top-`k` list
/// is converted to true distances in one monotone sweep at the end.
///
/// With `coords32` present the scan runs the `RankF32` filter-then-refine
/// loop: each tile is ranked in `f32` against the downcast query, and only
/// candidates whose `f32` rank beats the current kth rank (inflated by
/// [`RANK_F32_GUARD`]) are re-ranked in `f64`.  Counters then count the `f64`
/// refinements — the `f32` filter sweep is the thing being saved and is
/// deliberately not billed as a distance computation.
///
/// Delta adds are offered *first* (tightening the threshold before the frozen
/// block is scanned, mirroring [`bounded_knn_scan_delta`]) and always in
/// `f64`; tombstoned frozen rows are masked before they can be offered.
#[allow(clippy::too_many_arguments)]
pub(crate) fn flat_block_scan(
    query: &[f64],
    ids: &[PointId],
    coords: &CoordMatrix,
    coords32: Option<&[f32]>,
    k: usize,
    metric: DistanceMetric,
    delta: Option<&DeltaOverlay>,
    delta_block: Option<&DeltaBlock>,
    scratch: &mut TileScratch,
) -> (Vec<Neighbor>, ScanCounts) {
    let dim = coords.dims();
    let batch = metric.batch_rank_kernel();
    let mut neighbors = NeighborList::new(k);
    let mut counts = ScanCounts::default();
    if let Some(block) = delta_block {
        let rows = block.coords.as_slice();
        let mut t0 = 0;
        while t0 < block.ids.len() {
            let t1 = (t0 + PROBE_TILE).min(block.ids.len());
            let m = t1 - t0;
            batch(
                query,
                &rows[t0 * dim..t1 * dim],
                dim,
                &mut scratch.ranks[..m],
            );
            counts.delta += m as u64;
            for (off, &rank) in scratch.ranks[..m].iter().enumerate() {
                neighbors.offer(block.ids[t0 + off], rank);
            }
            t0 = t1;
        }
    }
    let rows = coords.as_slice();
    match coords32 {
        None => {
            // `Fast`: rank every row of every tile, mask tombstones on offer.
            let mut t0 = 0;
            while t0 < ids.len() {
                let t1 = (t0 + PROBE_TILE).min(ids.len());
                let m = t1 - t0;
                batch(
                    query,
                    &rows[t0 * dim..t1 * dim],
                    dim,
                    &mut scratch.ranks[..m],
                );
                counts.frozen += m as u64;
                for (off, &rank) in scratch.ranks[..m].iter().enumerate() {
                    let id = ids[t0 + off];
                    if let Some(overlay) = delta {
                        if overlay.is_tombstoned(id) {
                            counts.masked += 1;
                            continue;
                        }
                    }
                    neighbors.offer(id, rank);
                }
                t0 = t1;
            }
        }
        Some(rows32) => {
            // `RankF32`: f32 filter sweep, f64 refinement of survivors.
            let batch32 = metric.batch_rank_kernel_f32();
            let refine = metric.fast_rank_kernel();
            scratch.q32.clear();
            geom::kernels::downcast_coords(query, &mut scratch.q32);
            let mut t0 = 0;
            while t0 < ids.len() {
                let t1 = (t0 + PROBE_TILE).min(ids.len());
                let m = t1 - t0;
                batch32(
                    &scratch.q32,
                    &rows32[t0 * dim..t1 * dim],
                    dim,
                    &mut scratch.ranks32[..m],
                );
                let threshold = neighbors.threshold();
                let cutoff = if threshold.is_finite() {
                    threshold as f32 * RANK_F32_GUARD
                } else {
                    f32::INFINITY
                };
                for (off, &rank32) in scratch.ranks32[..m].iter().enumerate() {
                    if rank32 > cutoff {
                        continue;
                    }
                    let idx = t0 + off;
                    if let Some(overlay) = delta {
                        if overlay.is_tombstoned(ids[idx]) {
                            counts.masked += 1;
                            continue;
                        }
                    }
                    counts.frozen += 1;
                    neighbors.offer(ids[idx], refine(query, coords.row(idx)));
                }
                t0 = t1;
            }
        }
    }
    // The accumulator ran in rank space; the monotone rank→distance map
    // preserves the sorted order, so convert each entry in place.
    let mut out = neighbors.into_sorted();
    for n in &mut out {
        n.distance = metric.rank_to_distance(n.distance);
    }
    (out, counts)
}

// ---------------------------------------------------------------------------
// Prepared (build/probe) serving support
// ---------------------------------------------------------------------------

/// The long-lived S-side state shared by the prepared PGBJ and PBJ paths: the
/// pivot machinery, the Voronoi-partitioned `S` in flat columnar layout, the
/// `T_S` summary table and the per-partition scan orders.  Everything here
/// depends only on `S`, the pivot set and the plan — probe batches of `R`
/// reuse it unchanged, which is what keeps `pivot_selections` flat across
/// queries.
#[derive(Debug)]
pub(crate) struct VoronoiServeState {
    /// Pivot assignment machinery (flat pivot matrix + pruned search);
    /// `Arc`-shared so compaction epochs reuse it untouched.
    pub partitioner: Arc<VoronoiPartitioner>,
    /// The pivot set, shared into every per-query [`SummaryTables`].
    pub pivots: Arc<Vec<Point>>,
    /// Voronoi-partitioned `S` in flat layout; only non-empty partitions.
    /// Each cell sits behind its own `Arc` so a compaction rebuilds only the
    /// cells the delta touched and shares the rest.
    pub s_parts: Arc<BTreeMap<usize, Arc<FlatPartition>>>,
    /// `T_S`, built once with the plan's `k`; shared into every per-query
    /// [`SummaryTables`].
    pub s_summaries: Arc<Vec<SPartitionSummary>>,
    /// Pairwise pivot distances, shared likewise.
    pub pivot_distances: Arc<Vec<Vec<f64>>>,
    /// For every `R` partition `i`: the non-empty `S` partitions sorted by
    /// pivot distance from `p_i` (Algorithm 3 line 14, hoisted out of the
    /// per-query path since it depends only on the pivots).
    pub s_orders: Arc<Vec<Vec<usize>>>,
    /// How probe scans evaluate distances (`Exact` = the bit-identical
    /// Algorithm 3 loop; `Fast` / `RankF32` = the tiled batch-kernel scan).
    pub mode: KernelMode,
}

impl VoronoiServeState {
    /// Builds the serving state from the pivot set and `S`.
    pub(crate) fn build(
        pivots: Vec<Point>,
        metric: DistanceMetric,
        s: &PointSet,
        k: usize,
        mode: KernelMode,
    ) -> Self {
        let partitioner = Arc::new(VoronoiPartitioner::new_with_mode(pivots, metric, mode));
        let pivots = Arc::new(partitioner.pivots().to_vec());
        let partitioned_s = partitioner.partition(s);
        let s_summaries = Arc::new(build_s_summaries(&partitioned_s, k));
        let pivot_distances = Arc::new(pivot_distance_matrix(&pivots, metric));
        let dims = partitioner.pivot_matrix().dims();
        let mut s_parts: BTreeMap<usize, Arc<FlatPartition>> = BTreeMap::new();
        for (j, bucket) in partitioned_s.partitions.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut flat = FlatPartition::new(dims);
            for (point, dist) in bucket {
                flat.push(point, *dist);
            }
            s_parts.insert(j, Arc::new(flat));
        }
        let non_empty: Vec<usize> = s_parts.keys().copied().collect();
        let s_orders = Arc::new(compute_s_orders(
            &non_empty,
            &pivot_distances,
            partitioner.partition_count(),
        ));
        Self {
            partitioner,
            pivots,
            s_parts: Arc::new(s_parts),
            s_summaries,
            pivot_distances,
            s_orders,
            mode,
        }
    }

    /// Folds a delta overlay into the serving state, rebuilding *only* the
    /// Voronoi cells the delta touches: cells holding a tombstoned object
    /// and cells an added point is assigned to.  Untouched cells (and the
    /// pivot machinery, distance matrix and — when the non-empty cell set is
    /// unchanged — the scan orders) are `Arc`-shared into the new state.
    ///
    /// The rebuilt cells keep frozen arrival order followed by adds in
    /// ascending id order, and their `T_S` rows are recomputed with the same
    /// (order-insensitive) formulas as the full build, so the compacted
    /// state is distance-identical to a cold build over the materialized
    /// corpus.
    pub(crate) fn compact(
        &self,
        delta: &DeltaOverlay,
        k: usize,
        metrics: &mut JoinMetrics,
    ) -> Self {
        let dims = self.partitioner.pivot_matrix().dims();
        let mut affected: BTreeSet<usize> = BTreeSet::new();
        if delta.tombstones_len() > 0 {
            for (&j, part) in self.s_parts.iter() {
                if part.ids.iter().any(|id| delta.is_tombstoned(*id)) {
                    affected.insert(j);
                }
            }
        }
        let mut add_cells: BTreeMap<usize, Vec<(Point, f64)>> = BTreeMap::new();
        for (id, coords) in delta.adds() {
            let a = self.partitioner.nearest_pivot(coords);
            metrics.pivot_assignment_computations += a.computations;
            affected.insert(a.partition);
            add_cells
                .entry(a.partition)
                .or_default()
                .push((Point::new(id, coords.to_vec()), a.distance));
        }

        let mut s_parts: BTreeMap<usize, Arc<FlatPartition>> = BTreeMap::new();
        for (&j, part) in self.s_parts.iter() {
            if !affected.contains(&j) {
                s_parts.insert(j, Arc::clone(part));
            }
        }
        let mut s_summaries = (*self.s_summaries).clone();
        for &j in &affected {
            let mut flat = FlatPartition::new(dims);
            if let Some(old) = self.s_parts.get(&j) {
                for idx in 0..old.len() {
                    if delta.is_tombstoned(old.ids[idx]) {
                        continue;
                    }
                    flat.ids.push(old.ids[idx]);
                    flat.pivot_dists.push(old.pivot_dists[idx]);
                    flat.coords.push_row(old.coords.row(idx));
                }
            }
            if let Some(adds) = add_cells.get(&j) {
                for (point, dist) in adds {
                    flat.push(point, *dist);
                }
            }
            metrics.compacted_points += flat.len() as u64;
            s_summaries[j] = summarize_flat_partition(j, &flat, k);
            if !flat.is_empty() {
                s_parts.insert(j, Arc::new(flat));
            }
        }

        let old_non_empty: Vec<usize> = self.s_parts.keys().copied().collect();
        let new_non_empty: Vec<usize> = s_parts.keys().copied().collect();
        let s_orders = if new_non_empty == old_non_empty {
            Arc::clone(&self.s_orders)
        } else {
            Arc::new(compute_s_orders(
                &new_non_empty,
                &self.pivot_distances,
                self.partitioner.partition_count(),
            ))
        };
        Self {
            partitioner: Arc::clone(&self.partitioner),
            pivots: Arc::clone(&self.pivots),
            s_parts: Arc::new(s_parts),
            s_summaries: Arc::new(s_summaries),
            pivot_distances: Arc::clone(&self.pivot_distances),
            s_orders,
            mode: self.mode,
        }
    }

    /// Assigns a probe batch to Voronoi cells, returning one `(partition,
    /// pivot distance)` per object plus the pruned assignment computations
    /// actually spent.
    pub(crate) fn assign_batch(&self, r: &PointSet) -> (Vec<(u32, f64)>, u64) {
        let mut assignments = Vec::with_capacity(r.len());
        let mut computations = 0u64;
        for p in r {
            let a = self.partitioner.nearest_pivot(&p.coords);
            computations += a.computations;
            assignments.push((a.partition as u32, a.distance));
        }
        (assignments, computations)
    }

    /// Assembles the full [`SummaryTables`] for one probe batch: `T_R` is
    /// computed from the batch's assignments; the pivot set, `T_S` and the
    /// pivot-distance matrix are `Arc`-shared from the prebuilt state, so
    /// assembly costs O(t) for the fresh `R` summaries and nothing else.
    pub(crate) fn query_tables(&self, assignments: &[(u32, f64)]) -> SummaryTables {
        let t = self.partitioner.partition_count();
        let mut counts = vec![0usize; t];
        let mut lowers = vec![f64::INFINITY; t];
        let mut uppers = vec![f64::NEG_INFINITY; t];
        for (partition, dist) in assignments {
            let i = *partition as usize;
            counts[i] += 1;
            lowers[i] = lowers[i].min(*dist);
            uppers[i] = uppers[i].max(*dist);
        }
        let r_summaries = (0..t)
            .map(|i| RPartitionSummary {
                partition: i,
                count: counts[i],
                lower: if counts[i] == 0 { 0.0 } else { lowers[i] },
                upper: if counts[i] == 0 { 0.0 } else { uppers[i] },
            })
            .collect();
        SummaryTables {
            pivots: Arc::clone(&self.pivots),
            metric: self.partitioner.metric(),
            r_summaries,
            s_summaries: Arc::clone(&self.s_summaries),
            pivot_distances: Arc::clone(&self.pivot_distances),
        }
    }
}

/// The per-`R`-partition scan orders over the non-empty `S` cells (ascending
/// pivot distance, Algorithm 3 line 14), shared by the full build and the
/// partial compaction.
fn compute_s_orders(
    non_empty: &[usize],
    pivot_distances: &[Vec<f64>],
    partition_count: usize,
) -> Vec<Vec<usize>> {
    (0..partition_count)
        .map(|i| {
            let mut order = non_empty.to_vec();
            order.sort_by(|&a, &b| {
                pivot_distances[i][a]
                    .partial_cmp(&pivot_distances[i][b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order
        })
        .collect()
}

/// `T_S` row of one flat cell, with exactly the semantics of
/// [`build_s_summaries`]: `(0, 0)` bounds for empty cells, the `k` smallest
/// pivot distances ascending otherwise.  Both are order-insensitive in the
/// cell contents, which is what lets compaction recompute only the affected
/// rows.
fn summarize_flat_partition(partition: usize, flat: &FlatPartition, k: usize) -> SPartitionSummary {
    if flat.is_empty() {
        return SPartitionSummary {
            partition,
            count: 0,
            lower: 0.0,
            upper: 0.0,
            knn_distances: Vec::new(),
        };
    }
    let mut lower = f64::INFINITY;
    let mut upper = f64::NEG_INFINITY;
    for &d in &flat.pivot_dists {
        lower = lower.min(d);
        upper = upper.max(d);
    }
    let mut dists = flat.pivot_dists.clone();
    dists.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
    dists.truncate(k);
    SPartitionSummary {
        partition,
        count: flat.len(),
        lower,
        upper,
        knn_distances: dists,
    }
}

/// Encodes a probe batch as job input, embedding each object's partition and
/// pivot distance from the batch assignment.
pub(crate) fn encode_assigned_batch(
    r: &PointSet,
    assignments: &[(u32, f64)],
) -> Vec<(u64, EncodedRecord)> {
    r.iter()
        .zip(assignments)
        .map(|(p, (partition, dist))| {
            (
                p.id,
                EncodedRecord::from_parts(RecordKind::R, *partition, *dist, p),
            )
        })
        .collect()
}

/// Encodes a probe batch as job input without partition information (the
/// prepared paths that need no Voronoi assignment: H-BRJ, H-zkNNJ,
/// broadcast).
pub(crate) fn encode_probe_batch(r: &PointSet) -> Vec<(u64, EncodedRecord)> {
    r.iter()
        .map(|p| (p.id, EncodedRecord::from_parts(RecordKind::R, 0, 0.0, p)))
        .collect()
}

/// Runs one prepared probe job end to end: the single MapReduce job every
/// `*Prepared::probe` shares (only the mapper, the reducer and the reducer
/// count differ per algorithm), including the `knn join` phase timing, the
/// substrate error mapping and the row collection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_serve_job<M, R>(
    name: &'static str,
    input: Vec<(u64, EncodedRecord)>,
    reducers: usize,
    map_tasks: usize,
    workers: usize,
    mapper: &M,
    reducer: &R,
    metrics: &mut JoinMetrics,
) -> Result<Vec<JoinRow>, JoinError>
where
    M: Mapper<KIn = u64, VIn = EncodedRecord, KOut = u32, VOut = EncodedRecord>,
    R: Reducer<KIn = u32, VIn = EncodedRecord, KOut = u64, VOut = Vec<Neighbor>>,
{
    let start = Instant::now();
    let job = JobBuilder::new(name)
        .reducers(reducers)
        .map_tasks(map_tasks)
        .workers(workers)
        .run_with_partitioner(input, mapper, reducer, &IdentityPartitioner)
        .map_err(|e| JoinError::substrate(name, e))?;
    metrics.record_phase(phases::KNN_JOIN, start.elapsed());
    metrics.absorb_job(&job.metrics);
    Ok(job
        .output
        .into_iter()
        .map(|(r_id, neighbors)| JoinRow { r_id, neighbors })
        .collect())
}

/// Mapper of the prepared probe jobs: route each `R` record to the reducer
/// `id mod reducers` (the same modulo placement the cold broadcast join
/// uses).  Only `R` crosses the shuffle — the `S` side is resident in the
/// prepared state.
pub(crate) struct HashRouteMapper {
    /// Number of reducers of the probe job.
    pub reducers: usize,
}

impl Mapper for HashRouteMapper {
    type KIn = u64;
    type VIn = EncodedRecord;
    type KOut = u32;
    type VOut = EncodedRecord;

    fn map(&self, key: &u64, value: &EncodedRecord, ctx: &mut MapContext<u32, EncodedRecord>) {
        ctx.counters().increment(counters::R_RECORDS);
        ctx.emit((key % self.reducers as u64) as u32, value.clone());
    }
}

/// Reducer of the prepared PGBJ / PBJ probe jobs: the bounded Algorithm 3
/// scan of one batch slice against the resident flat `S` partitions.  The
/// Theorem 6 routing of the cold path is unnecessary here — no `S` record
/// crosses the shuffle — so pruning is carried entirely by Corollary 1,
/// Theorem 2 and the per-partition `θ_i` bound.
pub(crate) struct VoronoiServeReducer {
    /// Resident flat `S` partitions.
    pub s_parts: Arc<BTreeMap<usize, Arc<FlatPartition>>>,
    /// Prebuilt per-partition scan orders.
    pub s_orders: Arc<Vec<Vec<usize>>>,
    /// Per-batch summary tables (fresh `T_R`, prebuilt `T_S`).
    pub tables: Arc<SummaryTables>,
    /// Per-batch `θ_i` bounds (Algorithm 1); all `∞` when the delta overlay
    /// carries tombstones (deletions can break the `T_S`-derived bound).
    pub theta: Arc<Vec<f64>>,
    /// Neighbours per object.
    pub k: usize,
    /// Distance metric.
    pub metric: DistanceMetric,
    /// The S-delta memtable of a mutated prepared join; `None` keeps the
    /// scan (and its counters) bit-identical to the frozen-only path.
    pub delta: Option<Arc<DeltaOverlay>>,
    /// Kernel mode of the scan; `Exact` runs [`bounded_knn_scan_delta`]
    /// untouched, anything else the tiled batch-kernel twin.
    pub mode: KernelMode,
    /// The overlay's adds pre-gathered into flat layout for the tiled scan
    /// (built once per probe; `None` in `Exact` mode or with no adds).
    pub delta_block: Option<Arc<DeltaBlock>>,
}

impl Reducer for VoronoiServeReducer {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = Vec<Neighbor>;

    fn reduce(
        &self,
        _key: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, Vec<Neighbor>>,
    ) {
        for value in values {
            let record = value.decode();
            let i = record.partition as usize;
            let (neighbors, counts) = if self.mode.is_exact() {
                bounded_knn_scan_delta(
                    &record.point,
                    record.pivot_distance,
                    i,
                    &self.s_parts,
                    &self.s_orders[i],
                    &self.tables,
                    self.theta[i],
                    self.k,
                    self.metric,
                    self.delta.as_deref(),
                )
            } else {
                bounded_knn_scan_tiled(
                    &record.point,
                    record.pivot_distance,
                    i,
                    &self.s_parts,
                    &self.s_orders[i],
                    &self.tables,
                    self.theta[i],
                    self.k,
                    self.metric,
                    self.delta.as_deref(),
                    self.delta_block.as_deref(),
                )
            };
            ctx.counters()
                .add(counters::DISTANCE_COMPUTATIONS, counts.frozen);
            if self.delta.is_some() {
                ctx.counters()
                    .add(counters::DELTA_PROBE_COMPUTATIONS, counts.delta);
                ctx.counters()
                    .add(counters::TOMBSTONE_MASKED, counts.masked);
            }
            ctx.emit(record.point.id, neighbors);
        }
    }
}

/// Sorts the partition ids in `s_parts` by ascending pivot distance from the
/// pivot of `r_partition` (Algorithm 3 line 14).
pub fn order_s_partitions(
    s_parts: &BTreeMap<usize, FlatPartition>,
    r_partition: usize,
    tables: &SummaryTables,
) -> Vec<usize> {
    let mut order: Vec<usize> = s_parts.keys().copied().collect();
    order.sort_by(|&a, &b| {
        tables
            .pivot_distance(r_partition, a)
            .partial_cmp(&tables.pivot_distance(r_partition, b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Point, RecordKind};

    #[test]
    fn encoded_record_roundtrip_and_size() {
        let record = Record::new(RecordKind::S, 3, 1.5, Point::new(9, vec![1.0, 2.0]));
        let enc = EncodedRecord::encode(&record);
        assert_eq!(enc.byte_size(), record.encoded_len());
        assert_eq!(enc.decode(), record);
        // The borrowed constructor produces the identical bytes (and thus
        // identical shuffle accounting) without cloning the point.
        let borrowed = EncodedRecord::from_parts(RecordKind::S, 3, 1.5, &record.point);
        assert_eq!(borrowed, enc);
    }

    #[test]
    fn neighbor_list_value_size() {
        let v = NeighborListValue::new(vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.5)]);
        assert_eq!(v.byte_size(), 4 + 2 * 16);
    }

    #[test]
    fn merging_partial_lists_keeps_global_k_best() {
        let a = NeighborListValue::new(vec![Neighbor::new(1, 5.0), Neighbor::new(2, 1.0)]);
        let b = NeighborListValue::new(vec![Neighbor::new(3, 0.5), Neighbor::new(4, 9.0)]);
        let merged = merge_neighbor_lists(&[a, b], 2);
        let ids: Vec<u64> = merged.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn merging_handles_duplicates_across_blocks() {
        // The same S object can be seen by several reducer cells; duplicates
        // must not crowd out distinct neighbours... they are kept as-is since
        // block algorithms never see the same (r, s) pair twice, but merging
        // is still well-defined.
        let a = NeighborListValue::new(vec![Neighbor::new(1, 1.0)]);
        let b = NeighborListValue::new(vec![Neighbor::new(2, 2.0)]);
        let merged = merge_neighbor_lists(&[a.clone(), b, a], 3);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].id, 1);
    }
}
