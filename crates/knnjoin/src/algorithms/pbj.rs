//! PBJ — partitioning-based join without grouping (Section 6 of the paper).
//!
//! PBJ keeps the Voronoi partitioning and all of PGBJ's distance bounds, but
//! drops the grouping step: like H-BRJ it splits `R` and `S` into `B = ⌊√N⌋`
//! random blocks, joins every `(R_i, S_j)` pair on one reducer, and merges the
//! partial results with a second MapReduce job.  Inside a reducer, the summary
//! tables are used to derive a (necessarily looser, because the local `S`
//! block is a random sample of `S`) kNN distance bound and to prune candidate
//! partitions and objects — exactly the behaviour the paper uses to isolate
//! how much of PGBJ's win comes from the grouping versus the bounds.

use crate::algorithms::blocks::run_block_framework;
use crate::algorithms::common::{
    bounded_knn_scan, bounded_knn_scan_tiled, counters, order_s_partitions, split_reducer_records,
    DeltaBlock, EncodedRecord, FlatPartition, NeighborListValue,
};
use crate::algorithms::KnnJoinAlgorithm;
use crate::bounds::upper_bound;
use crate::context::ExecutionContext;
use crate::delta::DeltaOverlay;
use crate::exact::validate_inputs;
use crate::metrics::{phases, JoinMetrics};
use crate::partition::VoronoiPartitioner;
use crate::pivots::{select_pivots_with_mode, PivotSelectionStrategy};
use crate::result::{JoinError, JoinResult};
use crate::summary::SummaryTables;
use geom::{DistanceMetric, KernelMode, PointSet, RecordKind};
use mapreduce::{ReduceContext, Reducer};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of [`Pbj`].
#[derive(Debug, Clone)]
pub struct PbjConfig {
    /// Number of pivots (Voronoi cells).
    pub pivot_count: usize,
    /// How pivots are chosen from `R`.
    pub pivot_strategy: PivotSelectionStrategy,
    /// How many objects of `R` pivot selection may look at.
    pub pivot_sample_size: usize,
    /// Number of reducers ("computing nodes").
    pub reducers: usize,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// Whether the merge job pre-merges each map task's partial kNN lists
    /// map-side (a top-`k` combiner) before they cross the shuffle.  Enabled
    /// by default.
    pub combiner: bool,
    /// Seed for pivot selection.
    pub seed: u64,
    /// How distance kernels run (see [`KernelMode`]); `Exact` is the
    /// bit-identical default.
    pub kernel_mode: KernelMode,
}

impl Default for PbjConfig {
    fn default() -> Self {
        Self {
            pivot_count: 32,
            pivot_strategy: PivotSelectionStrategy::default(),
            pivot_sample_size: 10_000,
            reducers: 4,
            map_tasks: 8,
            combiner: true,
            seed: 0xC0FFEE,
            kernel_mode: KernelMode::default(),
        }
    }
}

/// The PBJ algorithm.
#[derive(Debug, Clone, Default)]
pub struct Pbj {
    config: PbjConfig,
}

impl Pbj {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: PbjConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PbjConfig {
        &self.config
    }

    fn validate(&self) -> Result<(), JoinError> {
        if self.config.pivot_count == 0 {
            return Err(JoinError::InvalidConfig(
                "pivot_count must be positive".into(),
            ));
        }
        if self.config.reducers == 0 {
            return Err(JoinError::ZeroReducers);
        }
        if self.config.map_tasks == 0 {
            return Err(JoinError::ZeroMapTasks);
        }
        Ok(())
    }
}

impl KnnJoinAlgorithm for Pbj {
    fn name(&self) -> &'static str {
        "PBJ"
    }

    fn join_with(
        &self,
        r: &PointSet,
        s: &PointSet,
        k: usize,
        metric: DistanceMetric,
        ctx: &ExecutionContext,
    ) -> Result<JoinResult, JoinError> {
        self.validate()?;
        validate_inputs(r, s, k)?;
        let cfg = &self.config;
        let mut metrics = JoinMetrics {
            r_size: r.len(),
            s_size: s.len(),
            ..Default::default()
        };

        // ---- Preprocessing: pivot selection --------------------------------
        let start = Instant::now();
        let pivots = select_pivots_with_mode(
            r,
            cfg.pivot_count,
            cfg.pivot_strategy,
            cfg.pivot_sample_size,
            metric,
            cfg.seed,
            cfg.kernel_mode,
        );
        metrics.record_phase(phases::PIVOT_SELECTION, start.elapsed());
        metrics.pivot_selections = 1;

        // ---- Partitioning (first job of the paper, run as a driver-side scan)
        let start = Instant::now();
        let partitioner =
            VoronoiPartitioner::new_with_mode(pivots.clone(), metric, cfg.kernel_mode);
        let partitioned_r = partitioner.partition(r);
        let partitioned_s = partitioner.partition(s);
        metrics.record_phase(phases::DATA_PARTITIONING, start.elapsed());

        // ---- Summary tables -------------------------------------------------
        let start = Instant::now();
        let tables = Arc::new(SummaryTables::build(
            pivots,
            metric,
            &partitioned_r,
            &partitioned_s,
            k,
        ));
        metrics.record_phase(phases::INDEX_MERGING, start.elapsed());

        // ---- Block join + merge (no grouping phase) -------------------------
        let mut input = Vec::with_capacity(r.len() + s.len());
        for (partition, bucket) in partitioned_r.partitions.iter().enumerate() {
            for (point, dist) in bucket {
                input.push((
                    point.id,
                    EncodedRecord::from_parts(RecordKind::R, partition as u32, *dist, point),
                ));
            }
        }
        for (partition, bucket) in partitioned_s.partitions.iter().enumerate() {
            for (point, dist) in bucket {
                input.push((
                    point.id,
                    EncodedRecord::from_parts(RecordKind::S, partition as u32, *dist, point),
                ));
            }
        }

        let reducer = PbjCellReducer {
            tables: Arc::clone(&tables),
            k,
            metric,
            mode: cfg.kernel_mode,
        };
        let rows = run_block_framework(
            input,
            k,
            cfg.reducers,
            cfg.map_tasks,
            ctx.workers(),
            cfg.combiner,
            &reducer,
            &mut metrics,
        )?;

        let mut result = JoinResult { rows, metrics };
        result.normalize();
        Ok(result)
    }
}

/// Reducer for one `(R_i, S_j)` cell: bounded, pruned nested-loop join using
/// the Voronoi summary tables, but over a random block of `S`.
struct PbjCellReducer {
    tables: Arc<SummaryTables>,
    k: usize,
    metric: DistanceMetric,
    mode: KernelMode,
}

impl PbjCellReducer {
    /// Derives a kNN-distance bound for the objects of one `R` partition from
    /// the `S` objects this reducer actually received (the "looser bound" the
    /// paper attributes to PBJ): the `k`-th smallest `ub(s, P_i^R)` over the
    /// local block.
    fn local_theta(&self, r_partition: usize, s_parts: &BTreeMap<usize, FlatPartition>) -> f64 {
        let u_r = self.tables.r_summaries[r_partition].upper;
        let mut ubs: Vec<f64> = Vec::new();
        for (&j, bucket) in s_parts {
            let pivot_dist = self.tables.pivot_distance(r_partition, j);
            for s_pivot_dist in &bucket.pivot_dists {
                ubs.push(upper_bound(u_r, pivot_dist, *s_pivot_dist));
            }
        }
        if ubs.len() < self.k {
            return f64::INFINITY;
        }
        ubs.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        ubs[self.k - 1]
    }
}

impl Reducer for PbjCellReducer {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = NeighborListValue;

    fn reduce(
        &self,
        _cell: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, NeighborListValue>,
    ) {
        let dims = self.tables.pivots.first().map_or(0, |p| p.dims());
        let (r_parts, s_parts) = split_reducer_records(values, dims);

        for (&i, r_bucket) in &r_parts {
            let s_order = order_s_partitions(&s_parts, i, &self.tables);
            let theta_i = self.local_theta(i, &s_parts);
            for (r_obj, r_pivot_dist) in r_bucket {
                let (neighbors, computations) = if self.mode.is_exact() {
                    bounded_knn_scan(
                        r_obj,
                        *r_pivot_dist,
                        i,
                        &s_parts,
                        &s_order,
                        &self.tables,
                        theta_i,
                        self.k,
                        self.metric,
                    )
                } else {
                    let (neighbors, counts) = bounded_knn_scan_tiled(
                        r_obj,
                        *r_pivot_dist,
                        i,
                        &s_parts,
                        &s_order,
                        &self.tables,
                        theta_i,
                        self.k,
                        self.metric,
                        None,
                        None,
                    );
                    (neighbors, counts.frozen)
                };
                ctx.counters()
                    .add(counters::DISTANCE_COMPUTATIONS, computations);
                ctx.emit(r_obj.id, NeighborListValue::new(neighbors));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Prepared (build/probe) serving path
// ---------------------------------------------------------------------------

/// The prepared PBJ state — the same Voronoi serving core as PGBJ, probed
/// without the grouping step (batches are hash-routed to reducers), exactly
/// mirroring how cold PBJ is "PGBJ's bounds without the grouping".
#[derive(Debug)]
pub(crate) struct PbjPrepared {
    core: crate::algorithms::common::VoronoiServeState,
}

impl PbjPrepared {
    /// Builds the S-side state (pivots from the calibration `R`, resident
    /// partitioned `S`, `T_S`).
    pub(crate) fn build(
        calibration_r: &PointSet,
        s: &PointSet,
        plan: &crate::plan::JoinPlan,
        metrics: &mut JoinMetrics,
    ) -> Self {
        let start = Instant::now();
        let pivots = select_pivots_with_mode(
            calibration_r,
            plan.pivot_count,
            plan.pivot_strategy,
            plan.pivot_sample_size,
            plan.metric,
            plan.seed,
            plan.kernel_mode,
        );
        metrics.record_phase(phases::PIVOT_SELECTION, start.elapsed());
        metrics.pivot_selections = 1;
        let start = Instant::now();
        let core = crate::algorithms::common::VoronoiServeState::build(
            pivots,
            plan.metric,
            s,
            plan.k,
            plan.kernel_mode,
        );
        metrics.record_phase(phases::DATA_PARTITIONING, start.elapsed());
        Self { core }
    }

    /// Answers one probe batch with the bounded Algorithm 3 scan, `θ_i`
    /// taken from the global Algorithm 1 bound (the resident `S` is the full
    /// dataset, so the tight bound applies — cold PBJ only had the local
    /// block's looser bound).
    pub(crate) fn probe(
        &self,
        r: &PointSet,
        plan: &crate::plan::JoinPlan,
        ctx: &ExecutionContext,
        delta: Option<&Arc<DeltaOverlay>>,
        metrics: &mut JoinMetrics,
    ) -> Result<Vec<crate::result::JoinRow>, JoinError> {
        use crate::algorithms::common::{
            encode_assigned_batch, run_serve_job, HashRouteMapper, VoronoiServeReducer,
        };

        let start = Instant::now();
        let (assignments, computations) = self.core.assign_batch(r);
        metrics.pivot_assignment_computations += computations;
        metrics.record_phase(phases::DATA_PARTITIONING, start.elapsed());

        let start = Instant::now();
        let tables = Arc::new(self.core.query_tables(&assignments));
        let bounds = crate::bounds::PartitionBounds::compute(&tables, plan.k);
        // Deletions can break the T_S-derived θ_i promise (see the PGBJ
        // probe); tombstones demote θ to the running kth distance alone.
        let theta = if delta.is_some_and(|d| d.tombstones_len() > 0) {
            Arc::new(vec![f64::INFINITY; tables.partition_count()])
        } else {
            Arc::new(bounds.theta)
        };
        metrics.record_phase(phases::INDEX_MERGING, start.elapsed());

        run_serve_job(
            "pbj-serve",
            encode_assigned_batch(r, &assignments),
            plan.reducers,
            plan.map_tasks,
            ctx.workers(),
            &HashRouteMapper {
                reducers: plan.reducers,
            },
            &VoronoiServeReducer {
                s_parts: Arc::clone(&self.core.s_parts),
                s_orders: Arc::clone(&self.core.s_orders),
                tables,
                theta,
                k: plan.k,
                metric: plan.metric,
                delta: delta.map(Arc::clone),
                mode: self.core.mode,
                delta_block: if self.core.mode.is_exact() {
                    None
                } else {
                    delta.and_then(|d| {
                        DeltaBlock::from_overlay(d, self.core.partitioner.pivot_matrix().dims())
                            .map(Arc::new)
                    })
                },
            },
            metrics,
        )
    }

    /// Folds a delta overlay into the resident Voronoi state, sharing
    /// everything the delta does not touch (see
    /// [`crate::algorithms::common::VoronoiServeState::compact`]).
    pub(crate) fn compact(
        &self,
        delta: &DeltaOverlay,
        plan: &crate::plan::JoinPlan,
        metrics: &mut JoinMetrics,
    ) -> Self {
        Self {
            core: self.core.compact(delta, plan.k, metrics),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::NestedLoopJoin;
    use datagen::{gaussian_clusters, uniform, ClusterConfig};
    use proptest::prelude::*;

    fn clustered(n: usize, seed: u64) -> PointSet {
        gaussian_clusters(
            &ClusterConfig {
                n_points: n,
                dims: 2,
                n_clusters: 5,
                std_dev: 5.0,
                extent: 150.0,
                skew: 0.5,
            },
            seed,
        )
    }

    fn check_matches_exact(r: &PointSet, s: &PointSet, k: usize, config: PbjConfig) {
        let metric = DistanceMetric::Euclidean;
        let expected = NestedLoopJoin.join(r, s, k, metric).unwrap();
        let got = Pbj::new(config).join(r, s, k, metric).unwrap();
        if let Some(msg) = got.mismatch_against(&expected, 1e-9) {
            panic!("PBJ result differs from exact join: {msg}");
        }
    }

    #[test]
    fn matches_exact_on_clustered_data() {
        let r = clustered(300, 1);
        let s = clustered(350, 2);
        check_matches_exact(
            &r,
            &s,
            10,
            PbjConfig {
                pivot_count: 24,
                reducers: 9,
                ..Default::default()
            },
        );
    }

    #[test]
    fn matches_exact_on_high_dimensional_uniform_data() {
        let r = uniform(200, 5, 80.0, 3);
        let s = uniform(220, 5, 80.0, 4);
        check_matches_exact(
            &r,
            &s,
            6,
            PbjConfig {
                pivot_count: 12,
                reducers: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn matches_exact_for_self_join() {
        let data = clustered(250, 5);
        check_matches_exact(
            &data,
            &data,
            8,
            PbjConfig {
                pivot_count: 16,
                reducers: 6,
                ..Default::default()
            },
        );
    }

    #[test]
    fn matches_exact_when_k_exceeds_s() {
        let r = uniform(40, 2, 30.0, 6);
        let s = uniform(7, 2, 30.0, 7);
        check_matches_exact(
            &r,
            &s,
            12,
            PbjConfig {
                pivot_count: 3,
                reducers: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn phases_and_metrics_are_populated() {
        let r = clustered(200, 8);
        let s = clustered(200, 9);
        let res = Pbj::new(PbjConfig {
            pivot_count: 16,
            reducers: 9,
            ..Default::default()
        })
        .join(&r, &s, 5, DistanceMetric::Euclidean)
        .unwrap();
        let m = &res.metrics;
        // √9 = 3 blocks: every object is replicated 3 times.
        assert_eq!(m.r_records_shuffled, 600);
        assert_eq!(m.s_records_shuffled, 600);
        assert!(m.distance_computations > 0);
        assert!(m.shuffle_bytes > 0);
        for phase in [
            phases::PIVOT_SELECTION,
            phases::DATA_PARTITIONING,
            phases::INDEX_MERGING,
            phases::KNN_JOIN,
            phases::RESULT_MERGING,
        ] {
            assert!(
                m.phase_times.iter().any(|(n, _)| n == phase),
                "missing {phase}"
            );
        }
        // PBJ must not have a grouping phase.
        assert_eq!(
            m.phase(phases::PARTITION_GROUPING),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn pruning_beats_exhaustive_scanning_within_cells() {
        let r = clustered(400, 10);
        let s = clustered(400, 11);
        let res = Pbj::new(PbjConfig {
            pivot_count: 32,
            reducers: 4,
            ..Default::default()
        })
        .join(&r, &s, 10, DistanceMetric::Euclidean)
        .unwrap();
        // Exhaustive block join would compute |R|·|S| = 160000 pairs (every
        // pair meets in exactly one cell); the bounds must cut that down.
        assert!(
            res.metrics.distance_computations < 160_000,
            "no pruning: {} computations",
            res.metrics.distance_computations
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let r = uniform(10, 2, 1.0, 0);
        let s = uniform(10, 2, 1.0, 1);
        assert!(matches!(
            Pbj::new(PbjConfig {
                pivot_count: 0,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::InvalidConfig(_)
        ));
        assert!(matches!(
            Pbj::new(PbjConfig {
                reducers: 0,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::ZeroReducers
        ));
        assert!(matches!(
            Pbj::new(PbjConfig {
                map_tasks: 0,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::ZeroMapTasks
        ));
        assert_eq!(Pbj::default().name(), "PBJ");
        assert_eq!(Pbj::default().config().pivot_count, 32);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn pbj_equals_exact_join(
            n_r in 10usize..100,
            n_s in 10usize..100,
            k in 1usize..10,
            pivot_count in 1usize..12,
            reducers in 1usize..10,
            seed in 0u64..100,
            which_metric in 0usize..3,
        ) {
            let r = uniform(n_r, 2, 80.0, seed);
            let s = uniform(n_s, 2, 80.0, seed ^ 0x99);
            let metric = [
                DistanceMetric::Euclidean,
                DistanceMetric::Manhattan,
                DistanceMetric::Chebyshev,
            ][which_metric];
            let expected = NestedLoopJoin.join(&r, &s, k, metric).unwrap();
            let got = Pbj::new(PbjConfig { pivot_count, reducers, map_tasks: 3, ..Default::default() })
                .join(&r, &s, k, metric)
                .unwrap();
            prop_assert!(got.matches(&expected, 1e-9), "{:?}", got.mismatch_against(&expected, 1e-9));
        }
    }
}
