//! The three distributed kNN-join algorithms evaluated in the paper.
//!
//! | Algorithm | Section | Framework | Pruning |
//! |-----------|---------|-----------|---------|
//! | [`Pgbj`]  | §4–5    | partition + group, single join job | Voronoi bounds (Theorems 1–6) |
//! | [`Pbj`]   | §6      | √N × √N blocks + merge job | Voronoi bounds within each block pair |
//! | [`Hbrj`]  | §3 (baseline, Zhang et al.) | √N × √N blocks + merge job | R-tree per S block |
//! | [`BroadcastJoin`] | §3 ("basic strategy") | R split N ways, S broadcast | none |
//! | [`Zknn`]  | §6 competitor (Zhang, Li, Jestes) | per-copy z-order slabs + merge job | approximate: 2k z-neighbours per shifted copy |
//!
//! All of them implement [`KnnJoinAlgorithm`] and produce a [`JoinResult`]
//! carrying the evaluation metrics of the paper.  H-zkNNJ is the one
//! *approximate* algorithm: its reported distances are true distances, but
//! its candidate sets are z-order neighbourhoods, so recall can fall below 1
//! (measured by [`crate::result::QualityReport`]).

mod blocks;
mod broadcast;
pub mod common;
mod hbrj;
mod pbj;
mod pgbj;
mod zknn;

pub use broadcast::{BroadcastJoin, BroadcastJoinConfig};
pub use hbrj::{Hbrj, HbrjConfig};
pub use pbj::{Pbj, PbjConfig};
pub use pgbj::{Pgbj, PgbjConfig};
pub use zknn::{Zknn, ZknnConfig};

pub(crate) use broadcast::BroadcastPrepared;
pub(crate) use hbrj::HbrjPrepared;
pub(crate) use pbj::PbjPrepared;
pub(crate) use pgbj::PgbjPrepared;
pub(crate) use zknn::ZknnPrepared;

use crate::context::ExecutionContext;
use crate::result::{JoinError, JoinResult};
use geom::{DistanceMetric, PointSet};

/// A distributed (MapReduce-based) or centralized kNN-join algorithm.
///
/// New code should prefer driving algorithms through the
/// [`crate::JoinBuilder`], which validates parameters and picks the
/// implementation at runtime; this trait remains the common execution
/// interface underneath (and keeps pre-builder call sites compiling).
pub trait KnnJoinAlgorithm {
    /// Short name used in experiment tables ("PGBJ", "PBJ", "H-BRJ", ...).
    fn name(&self) -> &'static str;

    /// Computes `R ⋉ S` for the given `k` and metric inside `ctx`, which
    /// supplies the MapReduce worker-pool size and shared substrate handles.
    ///
    /// # Errors
    /// Returns [`JoinError`] on invalid inputs or configuration.
    fn join_with(
        &self,
        r: &PointSet,
        s: &PointSet,
        k: usize,
        metric: DistanceMetric,
        ctx: &ExecutionContext,
    ) -> Result<JoinResult, JoinError>;

    /// Convenience wrapper running inside a default [`ExecutionContext`].
    ///
    /// # Errors
    /// Returns [`JoinError`] on invalid inputs or configuration.
    fn join(
        &self,
        r: &PointSet,
        s: &PointSet,
        k: usize,
        metric: DistanceMetric,
    ) -> Result<JoinResult, JoinError> {
        self.join_with(r, s, k, metric, &ExecutionContext::default())
    }
}

impl KnnJoinAlgorithm for crate::exact::NestedLoopJoin {
    fn name(&self) -> &'static str {
        "NestedLoop"
    }

    fn join_with(
        &self,
        r: &PointSet,
        s: &PointSet,
        k: usize,
        metric: DistanceMetric,
        _ctx: &ExecutionContext,
    ) -> Result<JoinResult, JoinError> {
        NestedLoopJoin::join(self, r, s, k, metric)
    }
}

use crate::exact::NestedLoopJoin;

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::uniform;

    #[test]
    fn nested_loop_implements_the_trait() {
        let alg: &dyn KnnJoinAlgorithm = &NestedLoopJoin;
        assert_eq!(alg.name(), "NestedLoop");
        let r = uniform(20, 2, 10.0, 1);
        let s = uniform(20, 2, 10.0, 2);
        let res = alg.join(&r, &s, 3, DistanceMetric::Euclidean).unwrap();
        assert_eq!(res.rows.len(), 20);
    }
}
