//! The "basic strategy" of Section 3: partition `R` into `N` disjoint subsets
//! and broadcast the *entire* `S` to every reducer.
//!
//! The paper introduces this strategy only to dismiss it — its shuffling cost
//! is `|R| + N·|S|` and every reducer joins its `R` subset against all of `S`
//! — but it is the natural naive MapReduce formulation and serves both as a
//! correctness oracle with a different code path and as the upper anchor for
//! the shuffle-cost comparisons.  A single job suffices (no merge phase),
//! since every reducer sees all of `S`.

use crate::algorithms::common::{
    counters, flat_block_scan, DeltaBlock, EncodedRecord, TileScratch,
};
use crate::algorithms::KnnJoinAlgorithm;
use crate::context::ExecutionContext;
use crate::delta::DeltaOverlay;
use crate::exact::{shadow_coords, validate_inputs};
use crate::metrics::{phases, JoinMetrics};
use crate::result::{JoinError, JoinResult, JoinRow};
use geom::{
    CoordMatrix, DistanceMetric, KernelMode, Neighbor, NeighborList, Point, PointSet, RecordKind,
};
use mapreduce::{IdentityPartitioner, JobBuilder, MapContext, Mapper, ReduceContext, Reducer};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of [`BroadcastJoin`].
#[derive(Debug, Clone)]
pub struct BroadcastJoinConfig {
    /// Number of reducers; `R` is split into this many subsets.
    pub reducers: usize,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// How the reducers evaluate distances (see [`KernelMode`]).
    pub kernel_mode: KernelMode,
}

impl Default for BroadcastJoinConfig {
    fn default() -> Self {
        Self {
            reducers: 4,
            map_tasks: 8,
            kernel_mode: KernelMode::default(),
        }
    }
}

/// The naive broadcast kNN join (the paper's "basic strategy").
#[derive(Debug, Clone, Default)]
pub struct BroadcastJoin {
    config: BroadcastJoinConfig,
}

impl BroadcastJoin {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: BroadcastJoinConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BroadcastJoinConfig {
        &self.config
    }

    fn validate(&self) -> Result<(), JoinError> {
        if self.config.reducers == 0 {
            return Err(JoinError::ZeroReducers);
        }
        if self.config.map_tasks == 0 {
            return Err(JoinError::ZeroMapTasks);
        }
        Ok(())
    }
}

impl KnnJoinAlgorithm for BroadcastJoin {
    fn name(&self) -> &'static str {
        "Broadcast"
    }

    fn join_with(
        &self,
        r: &PointSet,
        s: &PointSet,
        k: usize,
        metric: DistanceMetric,
        ctx: &ExecutionContext,
    ) -> Result<JoinResult, JoinError> {
        self.validate()?;
        validate_inputs(r, s, k)?;
        let mut metrics = JoinMetrics {
            r_size: r.len(),
            s_size: s.len(),
            ..Default::default()
        };

        let mut input = Vec::with_capacity(r.len() + s.len());
        for p in r {
            input.push((p.id, EncodedRecord::from_parts(RecordKind::R, 0, 0.0, p)));
        }
        for p in s {
            input.push((p.id, EncodedRecord::from_parts(RecordKind::S, 0, 0.0, p)));
        }

        let start = Instant::now();
        let job = JobBuilder::new("broadcast-join")
            .reducers(self.config.reducers)
            .map_tasks(self.config.map_tasks)
            .workers(ctx.workers())
            .run_with_partitioner(
                input,
                &BroadcastMapper {
                    reducers: self.config.reducers,
                },
                &BroadcastReducer {
                    k,
                    metric,
                    mode: self.config.kernel_mode,
                },
                &IdentityPartitioner,
            )
            .map_err(|e| JoinError::substrate("broadcast-join", e))?;
        metrics.record_phase(phases::KNN_JOIN, start.elapsed());
        metrics.absorb_job(&job.metrics);

        let rows = job
            .output
            .into_iter()
            .map(|(r_id, neighbors)| JoinRow { r_id, neighbors })
            .collect();
        let mut result = JoinResult { rows, metrics };
        result.normalize();
        Ok(result)
    }
}

/// Mapper: `R` objects go to one reducer (hash of their id); `S` objects are
/// broadcast to every reducer.
struct BroadcastMapper {
    reducers: usize,
}

impl Mapper for BroadcastMapper {
    type KIn = u64;
    type VIn = EncodedRecord;
    type KOut = u32;
    type VOut = EncodedRecord;

    fn map(&self, key: &u64, value: &EncodedRecord, ctx: &mut MapContext<u32, EncodedRecord>) {
        match value.decode().kind {
            RecordKind::R => {
                ctx.counters().increment(counters::R_RECORDS);
                ctx.emit((key % self.reducers as u64) as u32, value.clone());
            }
            RecordKind::S => {
                for reducer in 0..self.reducers as u32 {
                    ctx.counters().increment(counters::S_RECORDS);
                    ctx.emit(reducer, value.clone());
                }
            }
        }
    }
}

/// Reducer: exhaustive scan of the full `S` for every local `r` — the scalar
/// loop in `Exact` mode, the tiled batch-kernel scan otherwise.
struct BroadcastReducer {
    k: usize,
    metric: DistanceMetric,
    mode: KernelMode,
}

impl Reducer for BroadcastReducer {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = Vec<Neighbor>;

    fn reduce(
        &self,
        _key: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, Vec<Neighbor>>,
    ) {
        let mut r_block: Vec<Point> = Vec::new();
        let mut s_block: Vec<Point> = Vec::new();
        for value in values {
            let record = value.decode();
            match record.kind {
                RecordKind::R => r_block.push(record.point),
                RecordKind::S => s_block.push(record.point),
            }
        }
        // Flatten S once: the block is scanned |R_block| times, so the
        // columnar layout and hoisted kernel pay for themselves immediately.
        let s_coords = CoordMatrix::from_points(&s_block);
        if !self.mode.is_exact() {
            let s_ids: Vec<u64> = s_block.iter().map(|p| p.id).collect();
            let s_coords32 = shadow_coords(&s_coords, self.mode);
            let mut scratch = TileScratch::new();
            for r_obj in &r_block {
                let (neighbors, counts) = flat_block_scan(
                    &r_obj.coords,
                    &s_ids,
                    &s_coords,
                    s_coords32.as_deref(),
                    self.k,
                    self.metric,
                    None,
                    None,
                    &mut scratch,
                );
                ctx.counters()
                    .add(counters::DISTANCE_COMPUTATIONS, counts.frozen);
                ctx.emit(r_obj.id, neighbors);
            }
            return;
        }
        let kernel = self.metric.kernel();
        for r_obj in &r_block {
            let mut list = NeighborList::new(self.k);
            for (i, row) in s_coords.rows().enumerate() {
                list.offer(s_block[i].id, kernel(&r_obj.coords, row));
            }
            ctx.counters()
                .add(counters::DISTANCE_COMPUTATIONS, s_block.len() as u64);
            ctx.emit(r_obj.id, list.into_sorted());
        }
    }
}

// ---------------------------------------------------------------------------
// Prepared (build/probe) serving path
// ---------------------------------------------------------------------------

/// The prepared broadcast state: `S` flattened once into columnar storage.
/// In Hadoop terms the build is the broadcast itself — `S` is staged at
/// every node once — so probe batches ship only `R` and scan the resident
/// copy.
#[derive(Debug)]
pub(crate) struct BroadcastPrepared {
    ids: Vec<geom::PointId>,
    coords: CoordMatrix,
    /// `f32` shadow of `coords`, present only in `RankF32` mode.
    coords32: Option<Vec<f32>>,
    mode: KernelMode,
}

impl BroadcastPrepared {
    /// Flattens `S` (and downcasts the `f32` shadow when `mode` wants one).
    pub(crate) fn build(s: &PointSet, mode: KernelMode, metrics: &mut JoinMetrics) -> Self {
        let start = Instant::now();
        let coords = CoordMatrix::from_point_set(s);
        let coords32 = shadow_coords(&coords, mode);
        let prepared = Self {
            ids: s.iter().map(|p| p.id).collect(),
            coords,
            coords32,
            mode,
        };
        metrics.record_phase(phases::PREPARE_BUILD, start.elapsed());
        prepared
    }

    /// Answers one probe batch: exhaustive scan of the resident flat `S`
    /// (minus tombstones, plus the memtable's adds) per object, one serve
    /// job.
    pub(crate) fn probe(
        &self,
        r: &PointSet,
        plan: &crate::plan::JoinPlan,
        ctx: &ExecutionContext,
        delta: Option<&Arc<DeltaOverlay>>,
        metrics: &mut JoinMetrics,
    ) -> Result<Vec<JoinRow>, JoinError> {
        use crate::algorithms::common::{encode_probe_batch, run_serve_job, HashRouteMapper};

        run_serve_job(
            "broadcast-serve",
            encode_probe_batch(r),
            plan.reducers,
            plan.map_tasks,
            ctx.workers(),
            &HashRouteMapper {
                reducers: plan.reducers,
            },
            &BroadcastServeReducer {
                prepared: self,
                k: plan.k,
                metric: plan.metric,
                delta: delta.map(Arc::clone),
                delta_block: if self.mode.is_exact() {
                    None
                } else {
                    delta
                        .and_then(|d| DeltaBlock::from_overlay(d, self.coords.dims()).map(Arc::new))
                },
            },
            metrics,
        )
    }

    /// Re-flattens the materialized corpus (frozen survivors in arrival
    /// order, then adds in ascending id order — the canonical
    /// materialization order, so the compacted scan is bit-identical to a
    /// cold build over the same corpus), keeping this epoch's kernel mode.
    pub(crate) fn compact(&self, materialized: &PointSet, metrics: &mut JoinMetrics) -> Self {
        metrics.compacted_points += materialized.len() as u64;
        Self::build(materialized, self.mode, metrics)
    }
}

/// Serve reducer: the cold [`BroadcastReducer`] scan against the resident
/// flat `S`, with tombstoned rows masked and the memtable's adds appended
/// when a delta overlay is present.
struct BroadcastServeReducer<'a> {
    prepared: &'a BroadcastPrepared,
    k: usize,
    metric: DistanceMetric,
    delta: Option<Arc<DeltaOverlay>>,
    /// The overlay's adds in flat layout, gathered once per probe so the
    /// non-exact scan streams them through the batch kernels.
    delta_block: Option<Arc<DeltaBlock>>,
}

impl Reducer for BroadcastServeReducer<'_> {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = Vec<Neighbor>;

    fn reduce(
        &self,
        _key: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, Vec<Neighbor>>,
    ) {
        if !self.prepared.mode.is_exact() {
            let mut scratch = TileScratch::new();
            for value in values {
                let r_obj = value.decode().point;
                let (neighbors, counts) = flat_block_scan(
                    &r_obj.coords,
                    &self.prepared.ids,
                    &self.prepared.coords,
                    self.prepared.coords32.as_deref(),
                    self.k,
                    self.metric,
                    self.delta.as_deref(),
                    self.delta_block.as_deref(),
                    &mut scratch,
                );
                ctx.counters()
                    .add(counters::DISTANCE_COMPUTATIONS, counts.frozen);
                ctx.counters()
                    .add(counters::DELTA_PROBE_COMPUTATIONS, counts.delta);
                ctx.counters()
                    .add(counters::TOMBSTONE_MASKED, counts.masked);
                ctx.emit(r_obj.id, neighbors);
            }
            return;
        }
        let kernel = self.metric.kernel();
        for value in values {
            let r_obj = value.decode().point;
            let mut list = NeighborList::new(self.k);
            match self.delta.as_deref() {
                None => {
                    for (i, row) in self.prepared.coords.rows().enumerate() {
                        list.offer(self.prepared.ids[i], kernel(&r_obj.coords, row));
                    }
                    ctx.counters().add(
                        counters::DISTANCE_COMPUTATIONS,
                        self.prepared.ids.len() as u64,
                    );
                }
                Some(overlay) => {
                    let mut masked = 0u64;
                    for (i, row) in self.prepared.coords.rows().enumerate() {
                        if overlay.is_tombstoned(self.prepared.ids[i]) {
                            masked += 1;
                            continue;
                        }
                        list.offer(self.prepared.ids[i], kernel(&r_obj.coords, row));
                    }
                    let mut delta_computations = 0u64;
                    for (id, coords) in overlay.adds() {
                        list.offer(id, kernel(&r_obj.coords, coords));
                        delta_computations += 1;
                    }
                    ctx.counters().add(
                        counters::DISTANCE_COMPUTATIONS,
                        self.prepared.ids.len() as u64 - masked,
                    );
                    ctx.counters()
                        .add(counters::DELTA_PROBE_COMPUTATIONS, delta_computations);
                    ctx.counters().add(counters::TOMBSTONE_MASKED, masked);
                }
            }
            ctx.emit(r_obj.id, list.into_sorted());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::NestedLoopJoin;
    use datagen::uniform;
    use proptest::prelude::*;

    #[test]
    fn matches_exact_join() {
        let r = uniform(150, 3, 50.0, 1);
        let s = uniform(200, 3, 50.0, 2);
        let metric = DistanceMetric::Euclidean;
        let exact = NestedLoopJoin.join(&r, &s, 7, metric).unwrap();
        let got = BroadcastJoin::new(BroadcastJoinConfig {
            reducers: 5,
            ..Default::default()
        })
        .join(&r, &s, 7, metric)
        .unwrap();
        assert!(
            got.matches(&exact, 1e-9),
            "{:?}",
            got.mismatch_against(&exact, 1e-9)
        );
    }

    #[test]
    fn fast_and_rank_f32_modes_match_exact_mode() {
        let r = uniform(120, 4, 40.0, 21);
        let s = uniform(300, 4, 40.0, 22);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Chebyshev,
        ] {
            let exact = BroadcastJoin::default().join(&r, &s, 5, metric).unwrap();
            for mode in [KernelMode::Fast, KernelMode::RankF32] {
                let got = BroadcastJoin::new(BroadcastJoinConfig {
                    kernel_mode: mode,
                    ..Default::default()
                })
                .join(&r, &s, 5, metric)
                .unwrap();
                assert!(
                    got.matches(&exact, 1e-9),
                    "{metric:?}/{mode:?}: {:?}",
                    got.mismatch_against(&exact, 1e-9)
                );
            }
        }
    }

    #[test]
    fn shuffle_cost_is_r_plus_n_times_s() {
        // The defining property of the basic strategy (Section 3).
        let r = uniform(100, 2, 50.0, 3);
        let s = uniform(80, 2, 50.0, 4);
        let reducers = 6;
        let result = BroadcastJoin::new(BroadcastJoinConfig {
            reducers,
            ..Default::default()
        })
        .join(&r, &s, 3, DistanceMetric::Euclidean)
        .unwrap();
        assert_eq!(result.metrics.r_records_shuffled, 100);
        assert_eq!(result.metrics.s_records_shuffled, 80 * reducers as u64);
        // Every (r, s) pair is computed exactly once: selectivity is 1.
        assert_eq!(result.metrics.distance_computations, 100 * 80);
        assert!((result.metrics.computation_selectivity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_ships_more_than_pgbj_on_clustered_data() {
        let data = datagen::gaussian_clusters(
            &datagen::ClusterConfig {
                n_points: 400,
                dims: 2,
                n_clusters: 5,
                std_dev: 3.0,
                extent: 200.0,
                skew: 0.3,
            },
            9,
        );
        let metric = DistanceMetric::Euclidean;
        let broadcast = BroadcastJoin::new(BroadcastJoinConfig {
            reducers: 8,
            ..Default::default()
        })
        .join(&data, &data, 10, metric)
        .unwrap();
        let pgbj = crate::algorithms::Pgbj::new(crate::algorithms::PgbjConfig {
            pivot_count: 24,
            reducers: 8,
            ..Default::default()
        })
        .join(&data, &data, 10, metric)
        .unwrap();
        assert!(broadcast.metrics.shuffle_bytes > pgbj.metrics.shuffle_bytes);
        assert!(broadcast.metrics.distance_computations > pgbj.metrics.distance_computations);
        assert!(broadcast.matches(&pgbj, 1e-9));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let r = uniform(10, 2, 1.0, 0);
        let s = uniform(10, 2, 1.0, 1);
        assert!(matches!(
            BroadcastJoin::new(BroadcastJoinConfig {
                reducers: 0,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::ZeroReducers
        ));
        assert!(matches!(
            BroadcastJoin::new(BroadcastJoinConfig {
                reducers: 1,
                map_tasks: 0,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::ZeroMapTasks
        ));
        assert_eq!(BroadcastJoin::default().name(), "Broadcast");
        assert_eq!(BroadcastJoin::default().config().reducers, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn broadcast_equals_exact_join(
            n_r in 5usize..60,
            n_s in 5usize..60,
            k in 1usize..8,
            reducers in 1usize..8,
            seed in 0u64..50,
        ) {
            let r = uniform(n_r, 2, 40.0, seed);
            let s = uniform(n_s, 2, 40.0, seed ^ 0x31);
            let metric = DistanceMetric::Euclidean;
            let exact = NestedLoopJoin.join(&r, &s, k, metric).unwrap();
            let got = BroadcastJoin::new(BroadcastJoinConfig {
                reducers,
                map_tasks: 2,
                ..Default::default()
            })
                .join(&r, &s, k, metric)
                .unwrap();
            prop_assert!(got.matches(&exact, 1e-9));
        }
    }
}
