//! H-BRJ — the block-based R-tree baseline (Zhang et al., EDBT 2012),
//! described in Section 3 and used as the main competitor in Section 6.
//!
//! `R` and `S` are split into `B = ⌊√N⌋` random blocks each; every reducer
//! receives one `(R_i, S_j)` pair, probes an R-tree over `S_j` and answers a
//! kNN query for every `r ∈ R_i`; a second MapReduce job merges the `B`
//! partial lists of every `r` into the final `k` nearest neighbours.
//!
//! The `B` cells of one column all receive the *same* `S_j` block (the route
//! mapper replicates each `S` record across its column), so the tree over
//! `S_j` is built once — by whichever cell of the column reduces first — and
//! shared, instead of being bulk-loaded `B` times from identical input.  The
//! engine delivers one column's `S` values in the same order to every cell
//! (map-task order, then emission order), so the shared tree is bit-identical
//! to the per-cell trees it replaces and the join output and distance
//! counters are unchanged; only the number of bulk loads drops from `B²` to
//! `B` (the `index_builds` metric).

use crate::algorithms::blocks::{block_count, run_block_framework};
use crate::algorithms::common::{counters, EncodedRecord, NeighborListValue};
use crate::algorithms::KnnJoinAlgorithm;
use crate::context::ExecutionContext;
use crate::delta::DeltaOverlay;
use crate::exact::validate_inputs;
use crate::metrics::JoinMetrics;
use crate::result::{JoinError, JoinResult};
use geom::{DistanceMetric, KernelMode, Point, PointSet, RecordKind};
use mapreduce::{ReduceContext, Reducer};
use spatial::RTree;
use std::sync::{Arc, OnceLock};

/// Configuration of [`Hbrj`].
#[derive(Debug, Clone)]
pub struct HbrjConfig {
    /// Number of reducers ("computing nodes").  The framework uses
    /// `⌊√reducers⌋²` of them for the join job.
    pub reducers: usize,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// R-tree fanout used by the per-reducer index.
    pub rtree_fanout: usize,
    /// Whether the merge job pre-merges each map task's partial kNN lists
    /// map-side (a top-`k` combiner) before they cross the shuffle.  Enabled
    /// by default.
    pub combiner: bool,
    /// How the R-tree leaf scans evaluate distances (see [`KernelMode`]).
    pub kernel_mode: KernelMode,
}

impl Default for HbrjConfig {
    fn default() -> Self {
        Self {
            reducers: 4,
            map_tasks: 8,
            rtree_fanout: RTree::DEFAULT_FANOUT,
            combiner: true,
            kernel_mode: KernelMode::default(),
        }
    }
}

/// The H-BRJ baseline algorithm.
#[derive(Debug, Clone, Default)]
pub struct Hbrj {
    config: HbrjConfig,
}

impl Hbrj {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: HbrjConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HbrjConfig {
        &self.config
    }

    fn validate(&self) -> Result<(), JoinError> {
        if self.config.reducers == 0 {
            return Err(JoinError::ZeroReducers);
        }
        if self.config.map_tasks == 0 {
            return Err(JoinError::ZeroMapTasks);
        }
        if self.config.rtree_fanout < 2 {
            return Err(JoinError::InvalidConfig(
                "rtree_fanout must be at least 2".into(),
            ));
        }
        Ok(())
    }
}

impl KnnJoinAlgorithm for Hbrj {
    fn name(&self) -> &'static str {
        "H-BRJ"
    }

    fn join_with(
        &self,
        r: &PointSet,
        s: &PointSet,
        k: usize,
        metric: DistanceMetric,
        ctx: &ExecutionContext,
    ) -> Result<JoinResult, JoinError> {
        self.validate()?;
        validate_inputs(r, s, k)?;
        let mut metrics = JoinMetrics {
            r_size: r.len(),
            s_size: s.len(),
            ..Default::default()
        };

        // H-BRJ has no preprocessing: the map job replicates raw records,
        // encoded straight from the borrowed points (no dataset-sized clone).
        let mut input = Vec::with_capacity(r.len() + s.len());
        for p in r {
            input.push((p.id, EncodedRecord::from_parts(RecordKind::R, 0, 0.0, p)));
        }
        for p in s {
            input.push((p.id, EncodedRecord::from_parts(RecordKind::S, 0, 0.0, p)));
        }

        let blocks = block_count(self.config.reducers);
        let reducer = HbrjCellReducer {
            k,
            metric,
            fanout: self.config.rtree_fanout,
            mode: self.config.kernel_mode,
            blocks,
            s_trees: (0..blocks).map(|_| OnceLock::new()).collect(),
        };
        let rows = run_block_framework(
            input,
            k,
            self.config.reducers,
            self.config.map_tasks,
            ctx.workers(),
            self.config.combiner,
            &reducer,
            &mut metrics,
        )?;

        let mut result = JoinResult { rows, metrics };
        result.normalize();
        Ok(result)
    }
}

/// Reducer for one `(R_i, S_j)` cell: a shared R-tree over `S_j` (built by
/// the column's first cell, reused by the rest), best-first kNN per
/// `r ∈ R_i`.
struct HbrjCellReducer {
    k: usize,
    metric: DistanceMetric,
    fanout: usize,
    mode: KernelMode,
    /// `B`, the number of blocks per dataset; cell `c` joins `S` block
    /// `c % B`.
    blocks: usize,
    /// One lazily built tree per `S` block, shared across the column's cells.
    s_trees: Vec<OnceLock<Arc<RTree>>>,
}

impl Reducer for HbrjCellReducer {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = NeighborListValue;

    fn reduce(
        &self,
        cell: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, NeighborListValue>,
    ) {
        let mut r_block: Vec<Point> = Vec::new();
        let mut s_block: Vec<Point> = Vec::new();
        let s_slot = &self.s_trees[*cell as usize % self.blocks];
        let tree_cached = s_slot.get().is_some();
        for value in values {
            let record = value.decode();
            match record.kind {
                RecordKind::R => r_block.push(record.point),
                // Another cell of this column already built the (identical)
                // tree: skip collecting the block.
                RecordKind::S if !tree_cached => s_block.push(record.point),
                RecordKind::S => {}
            }
        }
        if r_block.is_empty() {
            return;
        }
        // Even with an empty S block every r must produce a (possibly empty)
        // candidate list so the merge job emits a row for it.
        let tree = s_slot.get_or_init(|| {
            ctx.counters().increment(counters::INDEX_BUILDS);
            Arc::new(RTree::bulk_load_with_mode(
                s_block,
                self.metric,
                self.fanout,
                self.mode,
            ))
        });
        for r_obj in &r_block {
            let (neighbors, computations) = tree.knn_counted(r_obj, self.k);
            ctx.counters()
                .add(counters::DISTANCE_COMPUTATIONS, computations);
            ctx.emit(r_obj.id, NeighborListValue::new(neighbors));
        }
    }
}

// ---------------------------------------------------------------------------
// Prepared (build/probe) serving path
// ---------------------------------------------------------------------------

/// The prepared H-BRJ state: the `B = ⌊√N⌋` per-block R-trees, bulk-loaded
/// once at build time.  A probe batch ships only `R` records; each serve
/// reducer probes all `B` resident trees per object and keeps the global
/// top-`k` — no per-query tree builds (`index_builds` stays flat) and no
/// merge job (every reducer sees the full `S` index set).
#[derive(Debug)]
pub(crate) struct HbrjPrepared {
    trees: Vec<Arc<RTree>>,
}

impl HbrjPrepared {
    /// Splits `S` into the same `id mod B` blocks as the cold path and
    /// bulk-loads one tree per block.
    pub(crate) fn build(
        s: &PointSet,
        plan: &crate::plan::JoinPlan,
        metrics: &mut JoinMetrics,
    ) -> Self {
        use crate::metrics::phases;
        let start = std::time::Instant::now();
        let blocks = block_count(plan.reducers);
        let mut block_points: Vec<Vec<Point>> = vec![Vec::new(); blocks];
        for p in s {
            block_points[(p.id % blocks as u64) as usize].push(p.clone());
        }
        let trees = block_points
            .into_iter()
            .map(|block| {
                Arc::new(RTree::bulk_load_with_mode(
                    block,
                    plan.metric,
                    plan.rtree_fanout,
                    plan.kernel_mode,
                ))
            })
            .collect();
        metrics.index_builds += blocks as u64;
        metrics.record_phase(phases::PREPARE_BUILD, start.elapsed());
        Self { trees }
    }

    /// Answers one probe batch with a single serve job over the resident
    /// trees (merged with the delta overlay when one is present).
    pub(crate) fn probe(
        &self,
        r: &PointSet,
        plan: &crate::plan::JoinPlan,
        ctx: &ExecutionContext,
        delta: Option<&Arc<DeltaOverlay>>,
        metrics: &mut JoinMetrics,
    ) -> Result<Vec<crate::result::JoinRow>, JoinError> {
        use crate::algorithms::common::{encode_probe_batch, run_serve_job, HashRouteMapper};

        run_serve_job(
            "hbrj-serve",
            encode_probe_batch(r),
            plan.reducers,
            plan.map_tasks,
            ctx.workers(),
            &HashRouteMapper {
                reducers: plan.reducers,
            },
            &HbrjServeReducer {
                trees: self.trees.clone(),
                k: plan.k,
                metric: plan.metric,
                delta: delta.map(Arc::clone),
            },
            metrics,
        )
    }

    /// Folds a delta overlay into the resident trees, rebuilding *only* the
    /// `id mod B` blocks the delta touches from the materialized corpus;
    /// untouched trees are `Arc`-shared into the new state.  Block
    /// membership is a pure function of the id, so the rebuilt blocks hold
    /// exactly what a cold build over the materialized corpus would load —
    /// in the same order, since both iterate the corpus front to back.
    pub(crate) fn compact(
        &self,
        materialized: &PointSet,
        delta: &DeltaOverlay,
        plan: &crate::plan::JoinPlan,
        metrics: &mut JoinMetrics,
    ) -> Self {
        let blocks = self.trees.len();
        let affected: std::collections::BTreeSet<usize> = delta
            .adds()
            .map(|(id, _)| id)
            .chain(delta.tombstones())
            .map(|id| (id % blocks as u64) as usize)
            .collect();
        let mut trees = self.trees.clone();
        for &b in &affected {
            let block: Vec<Point> = materialized
                .iter()
                .filter(|p| (p.id % blocks as u64) as usize == b)
                .cloned()
                .collect();
            metrics.compacted_points += block.len() as u64;
            metrics.index_builds += 1;
            trees[b] = Arc::new(RTree::bulk_load_with_mode(
                block,
                plan.metric,
                plan.rtree_fanout,
                plan.kernel_mode,
            ));
        }
        Self { trees }
    }
}

/// Serve reducer: best-first kNN against every resident block tree, merged
/// into the global top-`k` per object.
struct HbrjServeReducer {
    trees: Vec<Arc<RTree>>,
    k: usize,
    metric: DistanceMetric,
    delta: Option<Arc<DeltaOverlay>>,
}

impl Reducer for HbrjServeReducer {
    type KIn = u32;
    type VIn = EncodedRecord;
    type KOut = u64;
    type VOut = Vec<geom::Neighbor>;

    fn reduce(
        &self,
        _key: &u32,
        values: &[EncodedRecord],
        ctx: &mut ReduceContext<u64, Vec<geom::Neighbor>>,
    ) {
        for value in values {
            let r_obj = value.decode().point;
            match self.delta.as_deref() {
                None => {
                    let mut list = geom::NeighborList::new(self.k);
                    let mut computations = 0u64;
                    // One shared accumulator across the block trees: the k-th
                    // distance found in earlier trees prunes later ones, which
                    // the cold path's independent per-cell searches cannot do.
                    for tree in &self.trees {
                        computations += tree.knn_into(&r_obj, &mut list);
                    }
                    ctx.counters()
                        .add(counters::DISTANCE_COMPUTATIONS, computations);
                    ctx.emit(r_obj.id, list.into_sorted());
                }
                Some(overlay) => {
                    // The trees still index tombstoned objects, so up to
                    // t = |tombstones| of the best frozen hits may be dead.
                    // Oversampling to k + t guarantees the top-(k + t) frozen
                    // candidates contain the top-k *live* frozen candidates;
                    // tombstones are masked afterwards and the survivors are
                    // re-ranked together with the memtable's adds.
                    let t = overlay.tombstones_len();
                    let mut frozen = geom::NeighborList::new(self.k + t);
                    let mut computations = 0u64;
                    for tree in &self.trees {
                        computations += tree.knn_into(&r_obj, &mut frozen);
                    }
                    let kernel = self.metric.kernel();
                    let mut list = geom::NeighborList::new(self.k);
                    let mut delta_computations = 0u64;
                    for (id, coords) in overlay.adds() {
                        list.offer(id, kernel(&r_obj.coords, coords));
                        delta_computations += 1;
                    }
                    let mut masked = 0u64;
                    for n in frozen.into_sorted() {
                        if overlay.is_tombstoned(n.id) {
                            masked += 1;
                            continue;
                        }
                        list.offer(n.id, n.distance);
                    }
                    ctx.counters()
                        .add(counters::DISTANCE_COMPUTATIONS, computations);
                    ctx.counters()
                        .add(counters::DELTA_PROBE_COMPUTATIONS, delta_computations);
                    ctx.counters().add(counters::TOMBSTONE_MASKED, masked);
                    ctx.emit(r_obj.id, list.into_sorted());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::NestedLoopJoin;
    use datagen::{gaussian_clusters, uniform, ClusterConfig};
    use proptest::prelude::*;

    fn clustered(n: usize, seed: u64) -> PointSet {
        gaussian_clusters(
            &ClusterConfig {
                n_points: n,
                dims: 2,
                n_clusters: 5,
                std_dev: 5.0,
                extent: 150.0,
                skew: 0.5,
            },
            seed,
        )
    }

    fn check_matches_exact(r: &PointSet, s: &PointSet, k: usize, config: HbrjConfig) {
        let metric = DistanceMetric::Euclidean;
        let expected = NestedLoopJoin.join(r, s, k, metric).unwrap();
        let got = Hbrj::new(config).join(r, s, k, metric).unwrap();
        if let Some(msg) = got.mismatch_against(&expected, 1e-9) {
            panic!("H-BRJ result differs from exact join: {msg}");
        }
    }

    #[test]
    fn matches_exact_on_clustered_data() {
        let r = clustered(300, 1);
        let s = clustered(350, 2);
        check_matches_exact(
            &r,
            &s,
            10,
            HbrjConfig {
                reducers: 9,
                ..Default::default()
            },
        );
    }

    #[test]
    fn matches_exact_with_non_square_reducer_count() {
        let r = uniform(150, 3, 50.0, 3);
        let s = uniform(200, 3, 50.0, 4);
        check_matches_exact(
            &r,
            &s,
            5,
            HbrjConfig {
                reducers: 7,
                ..Default::default()
            },
        );
    }

    #[test]
    fn matches_exact_for_self_join_and_small_k() {
        let data = clustered(250, 5);
        check_matches_exact(
            &data,
            &data,
            1,
            HbrjConfig {
                reducers: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn matches_exact_when_k_exceeds_s() {
        let r = uniform(30, 2, 20.0, 6);
        let s = uniform(5, 2, 20.0, 7);
        check_matches_exact(
            &r,
            &s,
            9,
            HbrjConfig {
                reducers: 4,
                ..Default::default()
            },
        );
    }

    #[test]
    fn fast_and_rank_f32_modes_match_exact_mode() {
        let r = clustered(200, 31);
        let s = clustered(260, 32);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Chebyshev,
        ] {
            let exact = Hbrj::default().join(&r, &s, 8, metric).unwrap();
            for mode in [KernelMode::Fast, KernelMode::RankF32] {
                let got = Hbrj::new(HbrjConfig {
                    kernel_mode: mode,
                    ..Default::default()
                })
                .join(&r, &s, 8, metric)
                .unwrap();
                assert!(
                    got.matches(&exact, 1e-9),
                    "{metric:?}/{mode:?}: {:?}",
                    got.mismatch_against(&exact, 1e-9)
                );
            }
        }
    }

    #[test]
    fn replication_is_sqrt_n_per_object() {
        let r = clustered(200, 8);
        let s = clustered(200, 9);
        let res = Hbrj::new(HbrjConfig {
            reducers: 9,
            ..Default::default()
        })
        .join(&r, &s, 5, DistanceMetric::Euclidean)
        .unwrap();
        // B = 3: every R and S object is sent to exactly 3 reducer cells.
        assert_eq!(res.metrics.r_records_shuffled, 600);
        assert_eq!(res.metrics.s_records_shuffled, 600);
        assert!((res.metrics.average_replication() - 3.0).abs() < 1e-9);
        assert!(res.metrics.shuffle_bytes > 0);
        assert!(res.metrics.distance_computations > 0);
    }

    #[test]
    fn s_block_trees_are_built_once_per_block_not_once_per_cell() {
        let r = clustered(240, 12);
        let s = clustered(260, 13);
        let k = 6;
        let metric = DistanceMetric::Euclidean;
        let reducers = 16; // B = 4 blocks, 16 cells
        let res = Hbrj::new(HbrjConfig {
            reducers,
            ..Default::default()
        })
        .join(&r, &s, k, metric)
        .unwrap();

        // √n tree builds: one per distinct S block, not one per (R_i, S_j)
        // cell.
        let blocks = crate::algorithms::blocks::block_count(reducers) as u64;
        assert_eq!(res.metrics.index_builds, blocks);

        // The shared trees change nothing observable: the output still
        // matches the exact oracle, and the distance counters equal what
        // independently built per-block trees produce (each r probes every
        // S block exactly once).
        let expected = NestedLoopJoin.join(&r, &s, k, metric).unwrap();
        assert!(
            res.matches(&expected, 1e-9),
            "{:?}",
            res.mismatch_against(&expected, 1e-9)
        );
        let mut reference_computations = 0u64;
        for j in 0..blocks {
            let s_block: Vec<Point> = s.iter().filter(|p| p.id % blocks == j).cloned().collect();
            let tree = RTree::bulk_load_with_fanout(s_block, metric, RTree::DEFAULT_FANOUT);
            for r_obj in &r {
                reference_computations += tree.knn_counted(r_obj, k).1;
            }
        }
        assert_eq!(res.metrics.distance_computations, reference_computations);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let r = uniform(10, 2, 1.0, 0);
        let s = uniform(10, 2, 1.0, 1);
        assert!(matches!(
            Hbrj::new(HbrjConfig {
                reducers: 0,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::ZeroReducers
        ));
        assert!(matches!(
            Hbrj::new(HbrjConfig {
                map_tasks: 0,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::ZeroMapTasks
        ));
        assert!(matches!(
            Hbrj::new(HbrjConfig {
                rtree_fanout: 1,
                ..Default::default()
            })
            .join(&r, &s, 2, DistanceMetric::Euclidean)
            .unwrap_err(),
            JoinError::InvalidConfig(_)
        ));
        assert_eq!(Hbrj::default().name(), "H-BRJ");
        assert_eq!(Hbrj::default().config().reducers, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn hbrj_equals_exact_join(
            n_r in 10usize..100,
            n_s in 10usize..100,
            k in 1usize..10,
            reducers in 1usize..10,
            seed in 0u64..100,
        ) {
            let r = uniform(n_r, 2, 80.0, seed);
            let s = uniform(n_s, 2, 80.0, seed ^ 0x77);
            let metric = DistanceMetric::Euclidean;
            let expected = NestedLoopJoin.join(&r, &s, k, metric).unwrap();
            let got = Hbrj::new(HbrjConfig { reducers, map_tasks: 3, ..Default::default() })
                .join(&r, &s, k, metric)
                .unwrap();
            prop_assert!(got.matches(&expected, 1e-9), "{:?}", got.mismatch_against(&expected, 1e-9));
        }
    }
}
