//! Join-level metrics matching the quantities reported in the paper's
//! evaluation (Section 6).
//!
//! * **running time**, broken into the phases of Figure 6 (pivot selection,
//!   data partitioning, index merging, partition grouping, kNN join);
//! * **computation selectivity** (Equation 13): the fraction of object pairs
//!   whose distance is actually computed, counting pivots as objects;
//! * **replication of S**: how many copies of `S` objects are shuffled to
//!   reducers, and the average per object (`α` in Section 3);
//! * **shuffling cost**: the number of bytes crossing the MapReduce shuffle.

use mapreduce::JobMetrics;
use std::collections::BTreeMap;
use std::time::Duration;

/// Counter names used by the join jobs; aggregated into [`JoinMetrics`] by
/// [`JoinMetrics::absorb_job`].
pub mod counters {
    /// Distance computations performed in the join phase (between `R` objects
    /// and `S` objects or pivots) — the numerator of Equation 13.
    pub const DISTANCE_COMPUTATIONS: &str = "distance_computations";
    /// Point-to-pivot distance computations spent assigning objects to their
    /// Voronoi cell in the partitioning job.  Reported separately from
    /// [`DISTANCE_COMPUTATIONS`] so Equation 13 keeps the paper's definition;
    /// the count is the number *actually* spent by the pruned
    /// `nearest_pivot`, not the nominal `|R ∪ S| · |P|`.
    pub const PIVOT_ASSIGNMENT_COMPUTATIONS: &str = "pivot_assignment_computations";
    /// Number of `R` records emitted by the join job's mappers.
    pub const R_RECORDS: &str = "r_records_shuffled";
    /// Number of `S` records (replicas included) emitted by the join job's
    /// mappers.
    pub const S_RECORDS: &str = "s_records_shuffled";
    /// Number of spatial indexes (R-trees) actually constructed by the join
    /// job's reducers.  H-BRJ builds one per *distinct* `S` block (`⌊√N⌋`
    /// total) and shares it across the row of reducer cells; a regression to
    /// one-per-cell shows up here as a jump to `⌊√N⌋²`.
    pub const INDEX_BUILDS: &str = "index_builds";
    /// Distance computations spent scanning the resident S-delta memtable of
    /// a mutated [`crate::PreparedJoin`] (see [`crate::delta`]).  Kept apart
    /// from [`DISTANCE_COMPUTATIONS`] so the frozen-structure cost stays
    /// directly comparable with an unmutated corpus.
    pub const DELTA_PROBE_COMPUTATIONS: &str = "delta_probe_computations";
    /// Frozen-structure candidates discarded because their id is tombstoned
    /// in the delta overlay — the per-query overhead deletions impose until
    /// the next compaction folds the tombstones in.
    pub const TOMBSTONE_MASKED: &str = "tombstone_masked";
}

/// Phase names used by the harness; kept as constants so experiment tables use
/// the same labels as Figure 6 of the paper.
pub mod phases {
    /// Pivot selection on the master node (preprocessing step).
    pub const PIVOT_SELECTION: &str = "pivot selection";
    /// First MapReduce job: Voronoi partitioning of `R ∪ S`.
    pub const DATA_PARTITIONING: &str = "data partitioning";
    /// Merging the per-split statistics into the summary tables.
    pub const INDEX_MERGING: &str = "index merging";
    /// Grouping partitions of `R` into reducer groups.
    pub const PARTITION_GROUPING: &str = "partition grouping";
    /// Second MapReduce job: the kNN join itself.
    pub const KNN_JOIN: &str = "knn join";
    /// Extra MapReduce job merging partial results (H-BRJ / PBJ only).
    pub const RESULT_MERGING: &str = "result merging";
    /// Building the long-lived S-side serving state of a
    /// [`crate::PreparedJoin`] (spatial indexes, sorted z-copies, flat
    /// blocks).  Only appears in build metrics, never in per-query metrics.
    pub const PREPARE_BUILD: &str = "prepare build";
    /// Folding a [`crate::delta::DeltaOverlay`] into the frozen serving
    /// structures of a [`crate::PreparedJoin`].  Appears in the cumulative
    /// metrics (and the sink record emitted per compaction), never in
    /// per-query metrics.
    pub const COMPACTION: &str = "compaction";
}

/// Metrics of one kNN-join execution.
#[derive(Debug, Clone, Default)]
pub struct JoinMetrics {
    /// Wall-clock duration of each phase, in execution order.
    pub phase_times: Vec<(String, Duration)>,
    /// Number of object-pair distance computations performed during the join
    /// phase (between `R` objects and `S` objects *or pivots*, per the paper's
    /// definition of selectivity).
    pub distance_computations: u64,
    /// Point-to-pivot distance computations spent by the partitioning job's
    /// pruned nearest-pivot assignment (PGBJ job 1).  Kept separate from
    /// [`JoinMetrics::distance_computations`] so the selectivity of
    /// Equation 13 stays comparable with the paper.
    pub pivot_assignment_computations: u64,
    /// Number of `R` records shuffled to reducers in the join job.
    pub r_records_shuffled: u64,
    /// Number of `S` records (replicas included) shuffled to reducers in the
    /// join job.
    pub s_records_shuffled: u64,
    /// Number of spatial indexes built by the reducers (H-BRJ: one per
    /// distinct `S` block; zero for the index-free algorithms).
    pub index_builds: u64,
    /// Number of pivot-selection runs performed (PGBJ / PBJ: one per cold
    /// join, one per [`crate::PreparedJoin`] build, zero per prepared
    /// query).  Together with [`JoinMetrics::index_builds`] this is the
    /// counter pair that must stay flat across repeated prepared queries.
    pub pivot_selections: u64,
    /// Total bytes crossing the shuffle, across all MapReduce jobs involved.
    pub shuffle_bytes: u64,
    /// Total records crossing the shuffle (post-combine), across all jobs.
    pub shuffle_records: u64,
    /// Records fed into map-side combiners across all jobs (zero when the
    /// algorithm ran without combiners).
    pub combine_input_records: u64,
    /// Records the combiners let through to the shuffle.
    pub combine_output_records: u64,
    /// Distance computations spent scanning the S-delta memtable of a mutated
    /// [`crate::PreparedJoin`]; zero whenever the delta overlay is empty.
    pub delta_probe_computations: u64,
    /// Frozen-structure candidates masked by tombstones before ranking; zero
    /// whenever the delta overlay is empty.
    pub tombstone_masked: u64,
    /// Delta compactions performed (mutation path only).
    pub compactions: u64,
    /// Points re-laid-out into frozen serving structures by compactions.
    pub compacted_points: u64,
    /// |R| of the join that produced these metrics.
    pub r_size: usize,
    /// |S| of the join that produced these metrics.
    pub s_size: usize,
}

impl JoinMetrics {
    /// Records the duration of a named phase (phases keep insertion order so
    /// stacked-bar outputs match Figure 6).
    pub fn record_phase(&mut self, name: &str, elapsed: Duration) {
        self.phase_times.push((name.to_string(), elapsed));
    }

    /// Folds one MapReduce job's metrics into this join's totals: shuffle
    /// volume, combiner throughput, and the join-level [`counters`].
    ///
    /// Multi-job algorithms call this once per job, so *every* job's cost is
    /// visible — PGBJ's partitioning job counts towards shuffling cost just
    /// like its join job, exactly as the paper's cluster measurements would.
    pub fn absorb_job(&mut self, job: &JobMetrics) {
        self.shuffle_bytes += job.shuffle_bytes;
        self.shuffle_records += job.shuffle_records;
        self.combine_input_records += job.combine_input_records;
        self.combine_output_records += job.combine_output_records;
        self.distance_computations += job.counters.get(counters::DISTANCE_COMPUTATIONS);
        self.pivot_assignment_computations +=
            job.counters.get(counters::PIVOT_ASSIGNMENT_COMPUTATIONS);
        self.r_records_shuffled += job.counters.get(counters::R_RECORDS);
        self.s_records_shuffled += job.counters.get(counters::S_RECORDS);
        self.index_builds += job.counters.get(counters::INDEX_BUILDS);
        self.delta_probe_computations += job.counters.get(counters::DELTA_PROBE_COMPUTATIONS);
        self.tombstone_masked += job.counters.get(counters::TOMBSTONE_MASKED);
    }

    /// Folds another join's metrics into this one: counters and shuffle
    /// volume add up, phase times append in order, and the dataset sizes are
    /// taken from `other` when unset.  [`crate::PreparedJoin`] uses this to
    /// accumulate per-query metrics into a session-wide total.
    pub fn absorb(&mut self, other: &JoinMetrics) {
        for (name, d) in &other.phase_times {
            self.record_phase(name, *d);
        }
        self.distance_computations += other.distance_computations;
        self.pivot_assignment_computations += other.pivot_assignment_computations;
        self.r_records_shuffled += other.r_records_shuffled;
        self.s_records_shuffled += other.s_records_shuffled;
        self.index_builds += other.index_builds;
        self.pivot_selections += other.pivot_selections;
        self.shuffle_bytes += other.shuffle_bytes;
        self.shuffle_records += other.shuffle_records;
        self.combine_input_records += other.combine_input_records;
        self.combine_output_records += other.combine_output_records;
        self.delta_probe_computations += other.delta_probe_computations;
        self.tombstone_masked += other.tombstone_masked;
        self.compactions += other.compactions;
        self.compacted_points += other.compacted_points;
        if self.r_size == 0 {
            self.r_size = other.r_size;
        }
        if self.s_size == 0 {
            self.s_size = other.s_size;
        }
    }

    /// Total running time across phases.
    pub fn total_time(&self) -> Duration {
        self.phase_times.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of a phase by name (zero if the phase never ran).
    pub fn phase(&self, name: &str) -> Duration {
        self.phase_times
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Phase durations as a map, for serialisation into experiment rows.
    pub fn phases_map(&self) -> BTreeMap<String, Duration> {
        let mut m = BTreeMap::new();
        for (n, d) in &self.phase_times {
            *m.entry(n.clone()).or_insert(Duration::ZERO) += *d;
        }
        m
    }

    /// Computation selectivity (Equation 13): distance computations divided by
    /// `|R| · |S|`.  Expressed as a fraction; multiply by 1000 for the "per
    /// thousand" unit the paper plots.
    pub fn computation_selectivity(&self) -> f64 {
        if self.r_size == 0 || self.s_size == 0 {
            return 0.0;
        }
        self.distance_computations as f64 / (self.r_size as f64 * self.s_size as f64)
    }

    /// Average number of replicas of an `S` object shipped to reducers (`α`).
    pub fn average_replication(&self) -> f64 {
        if self.s_size == 0 {
            return 0.0;
        }
        self.s_records_shuffled as f64 / self.s_size as f64
    }

    /// Shuffling cost in mebibytes.
    pub fn shuffle_mib(&self) -> f64 {
        self.shuffle_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut m = JoinMetrics::default();
        m.record_phase(phases::PIVOT_SELECTION, Duration::from_millis(5));
        m.record_phase(phases::KNN_JOIN, Duration::from_millis(20));
        m.record_phase(phases::KNN_JOIN, Duration::from_millis(10));
        assert_eq!(m.total_time(), Duration::from_millis(35));
        assert_eq!(m.phase(phases::KNN_JOIN), Duration::from_millis(30));
        assert_eq!(m.phase(phases::RESULT_MERGING), Duration::ZERO);
        assert_eq!(m.phases_map().len(), 2);
        assert_eq!(m.phase_times[0].0, phases::PIVOT_SELECTION);
    }

    #[test]
    fn selectivity_and_replication() {
        let m = JoinMetrics {
            distance_computations: 500,
            r_size: 100,
            s_size: 50,
            s_records_shuffled: 150,
            shuffle_bytes: 1024 * 1024,
            ..Default::default()
        };
        assert!((m.computation_selectivity() - 0.1).abs() < 1e-12);
        assert!((m.average_replication() - 3.0).abs() < 1e-12);
        assert!((m.shuffle_mib() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_job_accumulates_volume_and_counters() {
        let mut join = JoinMetrics::default();
        let job = JobMetrics {
            shuffle_records: 100,
            shuffle_bytes: 4_000,
            combine_input_records: 150,
            combine_output_records: 100,
            ..Default::default()
        };
        job.counters.add(counters::DISTANCE_COMPUTATIONS, 7);
        job.counters.add(counters::PIVOT_ASSIGNMENT_COMPUTATIONS, 5);
        job.counters.add(counters::R_RECORDS, 40);
        job.counters.add(counters::INDEX_BUILDS, 3);
        job.counters.add(counters::DELTA_PROBE_COMPUTATIONS, 9);
        job.counters.add(counters::TOMBSTONE_MASKED, 2);
        join.absorb_job(&job);
        join.absorb_job(&job); // a second job of the same algorithm
        assert_eq!(join.shuffle_records, 200);
        assert_eq!(join.shuffle_bytes, 8_000);
        assert_eq!(join.combine_input_records, 300);
        assert_eq!(join.combine_output_records, 200);
        assert_eq!(join.distance_computations, 14);
        assert_eq!(join.pivot_assignment_computations, 10);
        assert_eq!(join.r_records_shuffled, 80);
        assert_eq!(join.s_records_shuffled, 0);
        assert_eq!(join.index_builds, 6);
        assert_eq!(join.delta_probe_computations, 18);
        assert_eq!(join.tombstone_masked, 4);
    }

    #[test]
    fn absorb_accumulates_counters_and_phases() {
        let mut total = JoinMetrics::default();
        let mut per_query = JoinMetrics {
            distance_computations: 10,
            pivot_assignment_computations: 4,
            r_records_shuffled: 3,
            index_builds: 1,
            pivot_selections: 1,
            shuffle_bytes: 100,
            shuffle_records: 5,
            delta_probe_computations: 7,
            tombstone_masked: 3,
            compactions: 1,
            compacted_points: 12,
            r_size: 30,
            s_size: 40,
            ..Default::default()
        };
        per_query.record_phase(phases::KNN_JOIN, Duration::from_millis(2));
        total.absorb(&per_query);
        total.absorb(&per_query);
        assert_eq!(total.distance_computations, 20);
        assert_eq!(total.pivot_assignment_computations, 8);
        assert_eq!(total.r_records_shuffled, 6);
        assert_eq!(total.index_builds, 2);
        assert_eq!(total.pivot_selections, 2);
        assert_eq!(total.shuffle_bytes, 200);
        assert_eq!(total.shuffle_records, 10);
        assert_eq!(total.delta_probe_computations, 14);
        assert_eq!(total.tombstone_masked, 6);
        assert_eq!(total.compactions, 2);
        assert_eq!(total.compacted_points, 24);
        assert_eq!(total.phase(phases::KNN_JOIN), Duration::from_millis(4));
        assert_eq!((total.r_size, total.s_size), (30, 40));
    }

    #[test]
    fn empty_inputs_do_not_divide_by_zero() {
        let m = JoinMetrics::default();
        assert_eq!(m.computation_selectivity(), 0.0);
        assert_eq!(m.average_replication(), 0.0);
        assert_eq!(m.total_time(), Duration::ZERO);
    }
}
