//! Validated execution plans and runtime algorithm selection.
//!
//! A [`JoinPlan`] is the fully-resolved description of one kNN join: which
//! [`Algorithm`] runs, with which `k`, metric and tuning parameters.  Plans
//! are produced by [`crate::JoinBuilder::plan`] (which validates inputs and
//! auto-tunes unset knobs) and executed against an
//! [`crate::ExecutionContext`]; they can also be inspected, logged or reused
//! across datasets of similar shape.

use crate::algorithms::{
    BroadcastJoin, BroadcastJoinConfig, Hbrj, HbrjConfig, KnnJoinAlgorithm, Pbj, PbjConfig, Pgbj,
    PgbjConfig, Zknn, ZknnConfig,
};
use crate::context::ExecutionContext;
use crate::exact::NestedLoopJoin;
use crate::grouping::GroupingStrategy;
use crate::pivots::PivotSelectionStrategy;
use crate::result::{JoinError, JoinResult};
use geom::{DistanceMetric, KernelMode, PointSet};
use spatial::RTree;

/// The join algorithms selectable at runtime.
///
/// The exact algorithms all produce identical results and differ only in cost
/// structure — exactly what the paper's evaluation compares.  [`Zknn`] is the
/// one approximate algorithm (the z-value competitor of §6): its reported
/// distances are true distances, but its candidate sets are z-order
/// neighbourhoods, so recall can fall below 1 (see
/// [`Algorithm::is_exact`] and [`crate::result::QualityReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// The paper's contribution: Voronoi partitioning + grouping (§4–5).
    #[default]
    Pgbj,
    /// Voronoi bounds inside the √N×√N block framework, no grouping (§6).
    Pbj,
    /// The R-tree block baseline of Zhang et al. (§3).
    Hbrj,
    /// The z-value-based *approximate* join of Zhang, Li and Jestes (the
    /// H-zkNNJ competitor of §6).
    Zknn,
    /// The naive "broadcast S everywhere" strategy (§3).
    BroadcastJoin,
    /// The single-machine exact oracle.
    NestedLoopJoin,
}

impl Algorithm {
    /// Every selectable algorithm, in paper order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Pgbj,
        Algorithm::Pbj,
        Algorithm::Hbrj,
        Algorithm::Zknn,
        Algorithm::BroadcastJoin,
        Algorithm::NestedLoopJoin,
    ];

    /// Display name, matching experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Pgbj => "PGBJ",
            Algorithm::Pbj => "PBJ",
            Algorithm::Hbrj => "H-BRJ",
            Algorithm::Zknn => "H-zkNNJ",
            Algorithm::BroadcastJoin => "Broadcast",
            Algorithm::NestedLoopJoin => "NestedLoop",
        }
    }

    /// Whether the algorithm runs on the MapReduce substrate (everything but
    /// the nested-loop oracle).
    pub fn is_distributed(&self) -> bool {
        !matches!(self, Algorithm::NestedLoopJoin)
    }

    /// Whether the algorithm consumes the Voronoi pivot machinery.
    pub fn uses_pivots(&self) -> bool {
        matches!(self, Algorithm::Pgbj | Algorithm::Pbj)
    }

    /// Whether the algorithm returns the exact kNN join.  Everything except
    /// [`Algorithm::Zknn`] does; H-zkNNJ trades recall for a much cheaper
    /// join, and its deviation from exact is measured by
    /// [`crate::result::QualityReport`].
    pub fn is_exact(&self) -> bool {
        !matches!(self, Algorithm::Zknn)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A validated, fully-resolved join plan.
///
/// Every field holds a concrete value: defaults and auto-tuned parameters are
/// already substituted by the time a plan exists.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// Which algorithm executes the join.
    pub algorithm: Algorithm,
    /// Number of neighbours per `R` object.
    pub k: usize,
    /// The distance metric.
    pub metric: DistanceMetric,
    /// Number of Voronoi pivots (meaningful for PGBJ/PBJ).
    pub pivot_count: usize,
    /// Whether `pivot_count` was auto-tuned (≈ √|R|) rather than requested.
    pub pivots_auto_tuned: bool,
    /// How pivots are selected from `R`.
    pub pivot_strategy: PivotSelectionStrategy,
    /// Sample-size cap for pivot selection.
    pub pivot_sample_size: usize,
    /// How Voronoi cells are merged into reducer groups (PGBJ).
    pub grouping_strategy: GroupingStrategy,
    /// Number of reducers ("computing nodes").
    pub reducers: usize,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// R-tree fanout (H-BRJ).
    pub rtree_fanout: usize,
    /// `α`, the number of randomly shifted copies (H-zkNNJ).  More copies
    /// heal more z-curve seams (higher recall) at proportionally more shuffle
    /// and candidate work.
    pub shift_copies: usize,
    /// Grid bits per dimension of the z-value quantization (H-zkNNJ).
    pub quantization_bits: u32,
    /// Candidate-window multiplier (H-zkNNJ): `z_window · k` z-neighbours per
    /// side per shifted copy.
    pub z_window: usize,
    /// Whether map-side combiners run (PGBJ's partitioning job, the block
    /// algorithms' merge job) to cut shuffle volume.
    pub combiner: bool,
    /// Seed driving pivot selection.
    pub seed: u64,
    /// Maximum resident delta-overlay size (adds + tombstones) of a
    /// [`crate::PreparedJoin`] before a mutation triggers an automatic
    /// compaction (see [`crate::delta`]).  Irrelevant to cold joins.
    pub delta_threshold: usize,
    /// How the distance hot loops evaluate kernels: `Exact` (the default)
    /// preserves the scalar loops bit for bit; `Fast` streams candidates
    /// through the multi-accumulator batch kernels; `RankF32` additionally
    /// filters candidates in `f32` before refining survivors in `f64` (see
    /// [`KernelMode`]).
    pub kernel_mode: KernelMode,
}

/// Default [`JoinPlan::delta_threshold`]: mutations beyond this many pending
/// delta entries compact the prepared join's serving structures.
pub const DEFAULT_DELTA_THRESHOLD: usize = 1024;

impl JoinPlan {
    /// Instantiates the planned algorithm as a trait object, so callers can
    /// also drive it through the legacy [`KnnJoinAlgorithm`] interface.
    pub fn instantiate(&self) -> Box<dyn KnnJoinAlgorithm> {
        match self.algorithm {
            Algorithm::Pgbj => Box::new(Pgbj::new(PgbjConfig {
                pivot_count: self.pivot_count,
                pivot_strategy: self.pivot_strategy,
                pivot_sample_size: self.pivot_sample_size,
                grouping_strategy: self.grouping_strategy,
                reducers: self.reducers,
                map_tasks: self.map_tasks,
                combiner: self.combiner,
                seed: self.seed,
                kernel_mode: self.kernel_mode,
            })),
            Algorithm::Pbj => Box::new(Pbj::new(PbjConfig {
                pivot_count: self.pivot_count,
                pivot_strategy: self.pivot_strategy,
                pivot_sample_size: self.pivot_sample_size,
                reducers: self.reducers,
                map_tasks: self.map_tasks,
                combiner: self.combiner,
                seed: self.seed,
                kernel_mode: self.kernel_mode,
            })),
            Algorithm::Hbrj => Box::new(Hbrj::new(HbrjConfig {
                reducers: self.reducers,
                map_tasks: self.map_tasks,
                rtree_fanout: self.rtree_fanout,
                combiner: self.combiner,
                kernel_mode: self.kernel_mode,
            })),
            Algorithm::Zknn => Box::new(Zknn::new(ZknnConfig {
                shift_copies: self.shift_copies,
                quantization_bits: self.quantization_bits,
                z_window: self.z_window,
                reducers: self.reducers,
                map_tasks: self.map_tasks,
                combiner: self.combiner,
                seed: self.seed,
                kernel_mode: self.kernel_mode,
            })),
            Algorithm::BroadcastJoin => Box::new(BroadcastJoin::new(BroadcastJoinConfig {
                reducers: self.reducers,
                map_tasks: self.map_tasks,
                kernel_mode: self.kernel_mode,
            })),
            Algorithm::NestedLoopJoin => Box::new(NestedLoopJoin),
        }
    }

    /// Executes the plan against `r` and `s` inside `ctx`, reporting the
    /// resulting metrics to the context's sink.
    pub fn execute(
        &self,
        r: &PointSet,
        s: &PointSet,
        ctx: &ExecutionContext,
    ) -> Result<JoinResult, JoinError> {
        // The nested-loop oracle is a unit struct (no config to carry the
        // knob through `instantiate`), so its mode dispatch lives here.
        let result = if self.algorithm == Algorithm::NestedLoopJoin {
            NestedLoopJoin.join_with_mode(r, s, self.k, self.metric, self.kernel_mode)?
        } else {
            self.instantiate()
                .join_with(r, s, self.k, self.metric, ctx)?
        };
        ctx.record_join(self.algorithm.name(), &result.metrics);
        Ok(result)
    }
}

impl Default for JoinPlan {
    fn default() -> Self {
        let pgbj = PgbjConfig::default();
        let zknn = ZknnConfig::default();
        Self {
            algorithm: Algorithm::default(),
            k: 1,
            metric: DistanceMetric::default(),
            pivot_count: pgbj.pivot_count,
            pivots_auto_tuned: false,
            pivot_strategy: pgbj.pivot_strategy,
            pivot_sample_size: pgbj.pivot_sample_size,
            grouping_strategy: pgbj.grouping_strategy,
            reducers: pgbj.reducers,
            map_tasks: pgbj.map_tasks,
            rtree_fanout: RTree::DEFAULT_FANOUT,
            shift_copies: zknn.shift_copies,
            quantization_bits: zknn.quantization_bits,
            z_window: zknn.z_window,
            combiner: pgbj.combiner,
            seed: pgbj.seed,
            delta_threshold: DEFAULT_DELTA_THRESHOLD,
            kernel_mode: KernelMode::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_predicates_are_stable() {
        assert_eq!(Algorithm::Pgbj.name(), "PGBJ");
        assert_eq!(Algorithm::Pbj.name(), "PBJ");
        assert_eq!(Algorithm::Hbrj.name(), "H-BRJ");
        assert_eq!(Algorithm::Zknn.name(), "H-zkNNJ");
        assert_eq!(Algorithm::BroadcastJoin.name(), "Broadcast");
        assert_eq!(Algorithm::NestedLoopJoin.name(), "NestedLoop");
        assert_eq!(Algorithm::default(), Algorithm::Pgbj);
        assert_eq!(format!("{}", Algorithm::Hbrj), "H-BRJ");
        assert!(Algorithm::Pgbj.is_distributed());
        assert!(Algorithm::Zknn.is_distributed());
        assert!(!Algorithm::NestedLoopJoin.is_distributed());
        assert!(Algorithm::Pbj.uses_pivots());
        assert!(!Algorithm::Hbrj.uses_pivots());
        assert!(!Algorithm::Zknn.uses_pivots());
        assert_eq!(Algorithm::ALL.len(), 6);
        // Exactly one algorithm is approximate.
        let approx: Vec<Algorithm> = Algorithm::ALL
            .into_iter()
            .filter(|a| !a.is_exact())
            .collect();
        assert_eq!(approx, vec![Algorithm::Zknn]);
    }

    #[test]
    fn every_algorithm_instantiates_with_its_own_name() {
        for algorithm in Algorithm::ALL {
            let plan = JoinPlan {
                algorithm,
                ..Default::default()
            };
            assert_eq!(plan.instantiate().name(), algorithm.name());
        }
    }
}
