//! The prepared (build/probe) serving surface: [`PreparedJoin`] and
//! [`JoinSession`].
//!
//! Every algorithm in this crate shares a two-phase shape: an expensive
//! S-side *build* (pivot selection + Voronoi partitioning for PGBJ/PBJ,
//! per-block R-trees for H-BRJ, shifted sorted z-copies for H-zkNNJ, flat
//! staging for broadcast/nested-loop) followed by a *probe* over `R`.  The
//! one-shot [`crate::JoinBuilder::run`] fuses the two, so every call rebuilds
//! the S-side state from scratch — fine for the paper's batch experiments,
//! wasteful for a serving system answering many `R` batches against one
//! corpus.
//!
//! [`crate::JoinBuilder::prepare`] splits the phases: it captures all
//! S-side state behind a cheaply-cloneable [`PreparedJoin`] handle, and
//! [`PreparedJoin::query`] answers arbitrary `R` batches against it without
//! re-planning or rebuilding.  Across repeated queries the
//! [`crate::JoinMetrics::index_builds`] and
//! [`crate::JoinMetrics::pivot_selections`] counters stay at zero, and the
//! outputs are bit-identical (in the repo's distance-exact sense, see
//! [`crate::JoinResult::mismatch_against`]) to what the cold path produces —
//! the exact algorithms by the theorems' exactness, H-zkNNJ because the
//! resident sorted copies reproduce the cold candidate windows verbatim.
//!
//! ```
//! use datagen::uniform;
//! use knnjoin::{Algorithm, ExecutionContext, JoinBuilder};
//!
//! let corpus = uniform(300, 2, 100.0, 1);
//! let batch = uniform(50, 2, 100.0, 2);
//! let ctx = ExecutionContext::default();
//!
//! // Build once...
//! let prepared = JoinBuilder::new(&batch, &corpus)
//!     .k(5)
//!     .algorithm(Algorithm::Pgbj)
//!     .prepare(&ctx)
//!     .unwrap();
//! // ...serve many batches.
//! let result = prepared.query(&batch).unwrap();
//! assert_eq!(result.len(), 50);
//! assert_eq!(result.metrics.index_builds, 0);
//! assert_eq!(result.metrics.pivot_selections, 0);
//! ```

use crate::algorithms::{BroadcastPrepared, HbrjPrepared, PbjPrepared, PgbjPrepared, ZknnPrepared};
use crate::context::{ExecutionContext, ServingStats};
use crate::delta::{DeltaOverlay, DeltaStats};
use crate::exact::NestedLoopPrepared;
use crate::metrics::{phases, JoinMetrics};
use crate::plan::{Algorithm, JoinPlan};
use crate::result::{JoinError, JoinResult, JoinRow, ResultSink};
use geom::{DistanceMetric, Point, PointId, PointSet};
use mapreduce::sync::{ranks, RankedMutex, RankedRwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-algorithm S-side state (see each algorithm module's `*Prepared`
/// type for what exactly is captured).
#[derive(Debug)]
enum PreparedState {
    Pgbj(PgbjPrepared),
    Pbj(PbjPrepared),
    Hbrj(HbrjPrepared),
    Zknn(ZknnPrepared),
    Broadcast(BroadcastPrepared),
    NestedLoop(NestedLoopPrepared),
}

impl PreparedState {
    /// Rebuilds the frozen structures with the overlay folded in.  The
    /// partition-based algorithms rebuild only the affected Voronoi cells /
    /// R-tree blocks / z-runs and share the rest; pivots, the quantizer and
    /// every other calibrated artifact are reused unchanged, so compaction
    /// never re-plans.
    fn compact(
        &self,
        materialized: &PointSet,
        delta: &DeltaOverlay,
        plan: &JoinPlan,
        metrics: &mut JoinMetrics,
    ) -> Self {
        match self {
            PreparedState::Pgbj(p) => PreparedState::Pgbj(p.compact(delta, plan, metrics)),
            PreparedState::Pbj(p) => PreparedState::Pbj(p.compact(delta, plan, metrics)),
            PreparedState::Hbrj(p) => {
                PreparedState::Hbrj(p.compact(materialized, delta, plan, metrics))
            }
            PreparedState::Zknn(p) => PreparedState::Zknn(p.compact(delta, metrics)),
            PreparedState::Broadcast(p) => {
                PreparedState::Broadcast(p.compact(materialized, metrics))
            }
            PreparedState::NestedLoop(p) => {
                PreparedState::NestedLoop(p.compact(materialized, metrics))
            }
        }
    }
}

/// One immutable version of the corpus: the frozen structures plus the
/// resident delta overlay.  Queries clone the `Arc` once and run entirely
/// against that snapshot, so a concurrent mutation or compaction (which
/// *publishes a new* `Epoch` rather than touching this one) can never tear a
/// probe batch.
#[derive(Debug)]
struct Epoch {
    /// Monotonic version, bumped by every effective mutation and compaction.
    number: u64,
    state: Arc<PreparedState>,
    /// The corpus the frozen structures were built over (pre-delta).
    frozen: Arc<PointSet>,
    /// Ids present in `frozen`, for upsert/delete classification.
    frozen_ids: Arc<BTreeSet<PointId>>,
    delta: Arc<DeltaOverlay>,
}

impl Epoch {
    /// Number of live objects: `|frozen| − |tombstones| + |adds|`.
    fn live_len(&self) -> usize {
        self.frozen.len() - self.delta.tombstones_len() + self.delta.adds_len()
    }
}

#[derive(Debug)]
struct Inner {
    plan: JoinPlan,
    ctx: ExecutionContext,
    s_dims: usize,
    /// The current corpus version; replaced wholesale on mutation.  A
    /// read-write lock because the serving hot path only ever *reads* it (one
    /// `Arc` clone per query): concurrent probes never contend with each
    /// other, only (briefly) with an epoch publication.
    epoch: RankedRwLock<Arc<Epoch>>,
    /// Lock-free mirror of the published epoch's `number`, so
    /// [`PreparedJoin::epoch`] (called by the session cache *while holding a
    /// shard lock*) never has to acquire the epoch lock — which would invert
    /// the declared `prepared.epoch < session.shard` order.
    epoch_number: AtomicU64,
    /// Serializes mutations (insert/delete/compact) so overlay updates and
    /// epoch publication are atomic with respect to each other.  Queries
    /// never take this lock.
    mutate: RankedMutex<()>,
    build_metrics: JoinMetrics,
    build_time: Duration,
    queries: AtomicU64,
    query_nanos: AtomicU64,
    cumulative: RankedMutex<JoinMetrics>,
    compactions: AtomicU64,
    compacted_points: AtomicU64,
}

impl Inner {
    fn snapshot(&self) -> Arc<Epoch> {
        Arc::clone(&self.epoch.read())
    }

    fn publish(&self, epoch: Epoch) {
        let number = epoch.number;
        let mut current = self.epoch.write();
        *current = Arc::new(epoch);
        // ORDERING: Release pairs with the Acquire load in
        // `PreparedJoin::epoch`, so a reader that observes the new number
        // also observes every write that produced the epoch; the store
        // happens under the write guard so the mirror can never run ahead of
        // the lock-protected pointer.
        self.epoch_number.store(number, Ordering::Release);
    }
}

/// The corpus an epoch represents, as a cold build would receive it: the
/// frozen points in their original order minus tombstones, then the overlay's
/// adds in ascending id order.
fn materialize(frozen: &PointSet, delta: &DeltaOverlay) -> PointSet {
    let live = frozen.len() - delta.tombstones_len() + delta.adds_len();
    let mut points = Vec::with_capacity(live);
    for p in frozen.iter() {
        if !delta.is_tombstoned(p.id) {
            points.push(p.clone());
        }
    }
    for (id, coords) in delta.adds() {
        points.push(Point::new(id, coords.to_vec()));
    }
    PointSet::from_points(points)
}

/// A join whose S-side state has been built once and can serve arbitrary `R`
/// batches.
///
/// Created by [`crate::JoinBuilder::prepare`].  Cloning is cheap (the state
/// sits behind an [`Arc`]) and clones share the serving statistics, like
/// several request handlers serving one resident index.
#[derive(Debug, Clone)]
pub struct PreparedJoin {
    inner: Arc<Inner>,
}

impl PreparedJoin {
    /// Builds the S-side state for the given validated plan.
    /// `calibration_r` is the builder's `R`: it seeds pivot selection and
    /// the z-domain exactly as the cold path would, so `query` over the same
    /// batch reproduces [`crate::JoinBuilder::run`] bit for bit; the built
    /// state remains valid for every other batch because no bound depends on
    /// where the pivots (or the quantization domain) came from.
    pub(crate) fn build(
        calibration_r: &PointSet,
        s: &PointSet,
        plan: JoinPlan,
        ctx: &ExecutionContext,
    ) -> Result<Self, JoinError> {
        let mut build_metrics = JoinMetrics {
            s_size: s.len(),
            ..Default::default()
        };
        let start = Instant::now();
        let state = match plan.algorithm {
            Algorithm::Pgbj => PreparedState::Pgbj(PgbjPrepared::build(
                calibration_r,
                s,
                &plan,
                &mut build_metrics,
            )),
            Algorithm::Pbj => PreparedState::Pbj(PbjPrepared::build(
                calibration_r,
                s,
                &plan,
                &mut build_metrics,
            )),
            Algorithm::Hbrj => {
                PreparedState::Hbrj(HbrjPrepared::build(s, &plan, &mut build_metrics))
            }
            Algorithm::Zknn => PreparedState::Zknn(ZknnPrepared::build(
                calibration_r,
                s,
                &plan,
                &mut build_metrics,
            )),
            Algorithm::BroadcastJoin => PreparedState::Broadcast(BroadcastPrepared::build(
                s,
                plan.kernel_mode,
                &mut build_metrics,
            )),
            Algorithm::NestedLoopJoin => PreparedState::NestedLoop(NestedLoopPrepared::build(
                s,
                plan.kernel_mode,
                &mut build_metrics,
            )),
        };
        let build_time = start.elapsed();
        let epoch = Epoch {
            number: 0,
            state: Arc::new(state),
            frozen_ids: Arc::new(s.iter().map(|p| p.id).collect()),
            frozen: Arc::new(s.clone()),
            delta: Arc::new(DeltaOverlay::default()),
        };
        Ok(Self {
            inner: Arc::new(Inner {
                s_dims: s.dims(),
                ctx: ctx.clone(),
                plan,
                epoch: RankedRwLock::new(ranks::PREPARED_EPOCH, "prepared.epoch", Arc::new(epoch)),
                epoch_number: AtomicU64::new(0),
                mutate: RankedMutex::new(ranks::PREPARED_MUTATE, "prepared.mutate", ()),
                build_metrics,
                build_time,
                queries: AtomicU64::new(0),
                query_nanos: AtomicU64::new(0),
                cumulative: RankedMutex::new(
                    ranks::PREPARED_CUMULATIVE,
                    "prepared.cumulative",
                    JoinMetrics::default(),
                ),
                compactions: AtomicU64::new(0),
                compacted_points: AtomicU64::new(0),
            }),
        })
    }

    /// The validated plan this join serves.
    pub fn plan(&self) -> &JoinPlan {
        &self.inner.plan
    }

    /// The algorithm behind the handle.
    pub fn algorithm(&self) -> Algorithm {
        self.inner.plan.algorithm
    }

    /// Neighbours returned per probe object.
    pub fn k(&self) -> usize {
        self.inner.plan.k
    }

    /// The distance metric.
    pub fn metric(&self) -> DistanceMetric {
        self.inner.plan.metric
    }

    /// Dimensionality of the prepared corpus (every probe point must match).
    pub fn dims(&self) -> usize {
        self.inner.s_dims
    }

    /// Number of *live* resident `S` objects:
    /// `|frozen| − |tombstones| + |adds|`.
    pub fn s_len(&self) -> usize {
        self.inner.snapshot().live_len()
    }

    /// The current corpus version.  Starts at 0 and is bumped by every
    /// effective [`PreparedJoin::insert`], [`PreparedJoin::delete`] and
    /// compaction, so a cached handle whose epoch moved is detectably stale
    /// (see [`SessionKey::epoch`]).
    ///
    /// Reads a lock-free mirror of the published epoch's number, so callers
    /// holding other locks (the session cache's shard mutex in particular)
    /// can poll staleness without acquiring the epoch lock.
    pub fn epoch(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release store in `Inner::publish`.
        self.inner.epoch_number.load(Ordering::Acquire)
    }

    /// The delta layer's current shape: pending overlay sizes plus lifetime
    /// compaction totals.
    pub fn delta_stats(&self) -> DeltaStats {
        let epoch = self.inner.snapshot();
        DeltaStats {
            epoch: epoch.number,
            pending_adds: epoch.delta.adds_len(),
            pending_tombstones: epoch.delta.tombstones_len(),
            // ORDERING: Relaxed — monotonic lifetime totals read for
            // observability; no other memory depends on their value.
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            compacted_points: self.inner.compacted_points.load(Ordering::Relaxed),
        }
    }

    /// The live corpus as a cold [`crate::JoinBuilder::run`] would receive
    /// it: frozen points in their original order minus tombstones, then the
    /// pending adds in ascending id order.  This is the oracle input for the
    /// mutated-equals-cold guarantee.
    pub fn materialized_corpus(&self) -> PointSet {
        let epoch = self.inner.snapshot();
        materialize(&epoch.frozen, &epoch.delta)
    }

    /// Inserts (or upserts) one `S` object into the resident corpus via the
    /// delta memtable.  If `point.id` is already live its coordinates are
    /// replaced; existing handles keep serving their snapshot and the next
    /// query observes the new point.  Triggers a compaction when the overlay
    /// outgrows [`crate::JoinPlan::delta_threshold`].
    ///
    /// # Errors
    /// Returns [`JoinError::DimensionalityMismatch`] when the point's
    /// dimensionality differs from the corpus.
    pub fn insert(&self, point: Point) -> Result<(), JoinError> {
        if point.coords.len() != self.inner.s_dims {
            return Err(JoinError::DimensionalityMismatch {
                r_dims: point.coords.len(),
                s_dims: self.inner.s_dims,
            });
        }
        let _guard = self.inner.mutate.lock();
        let epoch = self.inner.snapshot();
        let mut delta = (*epoch.delta).clone();
        if epoch.frozen_ids.contains(&point.id) {
            // Upsert over a frozen object: mask the frozen copy, serve the
            // new coordinates from the memtable.
            delta.tombstone(point.id);
        }
        delta.insert_add(point.id, point.coords);
        self.commit(&epoch, delta);
        Ok(())
    }

    /// Deletes one `S` object by id, returning whether it was live.  The
    /// frozen structures are untouched: the id joins the tombstone set and
    /// every probe path masks it before ranking.
    pub fn delete(&self, id: PointId) -> bool {
        let _guard = self.inner.mutate.lock();
        let epoch = self.inner.snapshot();
        let mut delta = (*epoch.delta).clone();
        let in_adds = delta.remove_add(id);
        let newly_tombstoned = epoch.frozen_ids.contains(&id) && delta.tombstone(id);
        if !in_adds && !newly_tombstoned {
            // Nothing changed: don't publish a new epoch for a no-op.
            return false;
        }
        self.commit(&epoch, delta);
        true
    }

    /// Forces a compaction of the pending overlay into a new frozen epoch,
    /// returning whether one ran (`false` when the overlay is empty or the
    /// corpus has no live objects to rebuild over).
    pub fn compact(&self) -> bool {
        let _guard = self.inner.mutate.lock();
        let epoch = self.inner.snapshot();
        if epoch.delta.is_empty() || epoch.live_len() == 0 {
            return false;
        }
        let compacted = self.run_compaction(&epoch, (*epoch.delta).clone());
        self.inner.publish(compacted);
        true
    }

    /// Publishes `delta` as the next epoch, compacting first when the
    /// overlay crossed the plan's threshold.  Caller holds the mutate lock.
    fn commit(&self, epoch: &Epoch, delta: DeltaOverlay) {
        #[cfg(any(test, feature = "debug-invariants"))]
        delta.audit(&epoch.frozen_ids);
        let live = epoch.frozen.len() - delta.tombstones_len() + delta.adds_len();
        if delta.len() > self.inner.plan.delta_threshold && live > 0 {
            let compacted = self.run_compaction(epoch, delta);
            self.inner.publish(compacted);
        } else {
            self.inner.publish(Epoch {
                number: epoch.number + 1,
                state: Arc::clone(&epoch.state),
                frozen: Arc::clone(&epoch.frozen),
                frozen_ids: Arc::clone(&epoch.frozen_ids),
                delta: Arc::new(delta),
            });
        }
    }

    /// Folds `delta` into `epoch`'s frozen structures: partition-local
    /// rebuilds against the materialized corpus, reported through
    /// [`JoinMetrics`] (a `compaction` phase with `compactions = 1`) into
    /// the cumulative metrics and the context's serving log.  Caller holds
    /// the mutate lock.
    fn run_compaction(&self, epoch: &Epoch, delta: DeltaOverlay) -> Epoch {
        #[cfg(any(test, feature = "debug-invariants"))]
        delta.audit(&epoch.frozen_ids);
        let inner = &*self.inner;
        let start = Instant::now();
        let materialized = materialize(&epoch.frozen, &delta);
        let mut metrics = JoinMetrics {
            s_size: materialized.len(),
            compactions: 1,
            ..Default::default()
        };
        let state = epoch
            .state
            .compact(&materialized, &delta, &inner.plan, &mut metrics);
        metrics.record_phase(phases::COMPACTION, start.elapsed());
        // ORDERING: Relaxed — monotonic statistics counters; readers only
        // need eventual totals, never synchronization with the epoch data
        // (which flows through the epoch lock / its Release mirror).
        inner.compactions.fetch_add(1, Ordering::Relaxed);
        inner
            .compacted_points
            .fetch_add(metrics.compacted_points, Ordering::Relaxed);
        inner.cumulative.lock().absorb(&metrics);
        inner.ctx.record_join(inner.plan.algorithm.name(), &metrics);
        Epoch {
            number: epoch.number + 1,
            state: Arc::new(state),
            frozen_ids: Arc::new(materialized.iter().map(|p| p.id).collect()),
            frozen: Arc::new(materialized),
            delta: Arc::new(DeltaOverlay::default()),
        }
    }

    /// The metrics of the build phase (pivot selection, partitioning, index
    /// builds); per-query metrics never include these costs again.
    pub fn build_metrics(&self) -> &JoinMetrics {
        &self.inner.build_metrics
    }

    /// Serving statistics: queries answered, build time, cumulative query
    /// time (amortization helpers included).
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            // ORDERING: Relaxed — the two counters are bumped independently
            // per query; a snapshot between the two bumps is acceptable for
            // serving statistics and no other state is guarded by them.
            queries: self.inner.queries.load(Ordering::Relaxed),
            build_time: self.inner.build_time,
            total_query_time: Duration::from_nanos(self.inner.query_nanos.load(Ordering::Relaxed)),
        }
    }

    /// The session-wide accumulation of every query's [`JoinMetrics`]
    /// (shared across clones of the handle).
    pub fn cumulative_metrics(&self) -> JoinMetrics {
        self.inner.cumulative.lock().clone()
    }

    /// Validates a probe batch against the prepared corpus, then runs the
    /// algorithm's probe against one epoch snapshot.  The `Arc<Epoch>` is
    /// cloned once up front, so `query`, `query_one` and `query_into` all
    /// observe a single consistent corpus version even while concurrent
    /// mutations publish new epochs mid-probe.
    fn run_probe(&self, r: &PointSet) -> Result<(Vec<JoinRow>, JoinMetrics), JoinError> {
        if r.is_empty() {
            return Err(JoinError::EmptyInput("R"));
        }
        if let Some((index, dims)) = r.first_dim_mismatch() {
            return Err(JoinError::RaggedInput {
                dataset: "R",
                index,
                dims,
                expected: r.dims(),
            });
        }
        if r.dims() != self.inner.s_dims {
            return Err(JoinError::DimensionalityMismatch {
                r_dims: r.dims(),
                s_dims: self.inner.s_dims,
            });
        }
        let inner = &*self.inner;
        let epoch = inner.snapshot();
        // An empty overlay probes the frozen structures through exactly the
        // pre-delta code path (`None`, not `Some(empty)`), keeping counters
        // and candidate traversal bit-identical to an immutable corpus.
        let delta = (!epoch.delta.is_empty()).then_some(&epoch.delta);
        let mut metrics = JoinMetrics {
            r_size: r.len(),
            s_size: epoch.live_len(),
            ..Default::default()
        };
        let start = Instant::now();
        let mut rows = match &*epoch.state {
            PreparedState::Pgbj(p) => p.probe(r, &inner.plan, &inner.ctx, delta, &mut metrics)?,
            PreparedState::Pbj(p) => p.probe(r, &inner.plan, &inner.ctx, delta, &mut metrics)?,
            PreparedState::Hbrj(p) => p.probe(r, &inner.plan, &inner.ctx, delta, &mut metrics)?,
            PreparedState::Zknn(p) => p.probe(r, &inner.plan, &inner.ctx, delta, &mut metrics)?,
            PreparedState::Broadcast(p) => {
                p.probe(r, &inner.plan, &inner.ctx, delta, &mut metrics)?
            }
            PreparedState::NestedLoop(p) => p.probe(
                r,
                inner.plan.k,
                inner.plan.metric,
                delta.map(|d| &**d),
                &mut metrics,
            ),
        };
        let elapsed = start.elapsed();
        rows.sort_by_key(|row| row.r_id);
        for row in &mut rows {
            row.neighbors.sort();
        }
        // ORDERING: Relaxed — independent monotonic serving counters; the
        // query result itself was produced from the epoch snapshot above and
        // never synchronizes through these.
        inner.queries.fetch_add(1, Ordering::Relaxed);
        inner
            .query_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        inner.cumulative.lock().absorb(&metrics);
        inner.ctx.record_join(inner.plan.algorithm.name(), &metrics);
        Ok((rows, metrics))
    }

    /// Answers one probe batch: the `k` nearest resident `S` objects of every
    /// object of `r`.
    ///
    /// # Errors
    /// Returns [`JoinError`] when the batch is empty, ragged, of the wrong
    /// dimensionality, or the substrate fails.
    pub fn query(&self, r: &PointSet) -> Result<JoinResult, JoinError> {
        let (rows, metrics) = self.run_probe(r)?;
        Ok(JoinResult { rows, metrics })
    }

    /// Answers a single-point query: the `k` nearest resident `S` objects of
    /// `point`.
    ///
    /// # Errors
    /// Returns [`JoinError`] on a dimensionality mismatch or substrate
    /// failure.
    pub fn query_one(&self, point: &Point) -> Result<JoinRow, JoinError> {
        let singleton = PointSet::from_points(vec![point.clone()]);
        let (mut rows, _) = self.run_probe(&singleton)?;
        rows.pop()
            .ok_or(JoinError::Internal("probe returned no row for its object"))
    }

    /// Streams one probe batch's rows (in `r_id` order) into `sink` instead
    /// of materializing a [`JoinResult`], returning only the query's
    /// metrics.  Use this to serve large `R` without holding `|R| · k`
    /// neighbours alive in one result value.
    ///
    /// # Errors
    /// Same conditions as [`PreparedJoin::query`].
    pub fn query_into(
        &self,
        r: &PointSet,
        sink: &mut dyn ResultSink,
    ) -> Result<JoinMetrics, JoinError> {
        let (rows, metrics) = self.run_probe(r)?;
        for row in rows {
            sink.accept(row);
        }
        Ok(metrics)
    }
}

/// The key a [`JoinSession`] caches prepared joins under: a caller-chosen
/// corpus label plus the query-compatibility knobs (algorithm, metric, `k`)
/// and the corpus epoch the entry was cached at.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Caller-chosen corpus label (which `S` the state was built over).
    pub corpus: String,
    /// Algorithm of the cached state.
    pub algorithm: Algorithm,
    /// Metric of the cached state.
    pub metric: DistanceMetric,
    /// `k` of the cached state.
    pub k: usize,
    /// [`PreparedJoin::epoch`] at the moment the entry was cached.  A handle
    /// mutated after caching no longer matches its stored key, so the
    /// session treats it as stale and rebuilds instead of serving a corpus
    /// the caller's label no longer describes.
    pub epoch: u64,
}

impl SessionKey {
    /// Whether `other` asks for the same corpus label and query shape,
    /// ignoring the cached epoch (unknowable at request time).
    fn matches_request(&self, other: &SessionKey) -> bool {
        self.corpus == other.corpus
            && self.algorithm == other.algorithm
            && self.metric == other.metric
            && self.k == other.k
    }
}

/// Lock shards in a [`JoinSession`].  Requests for different corpora /
/// shapes hash to different shards and never contend; a small power of two
/// keeps the (rare, miss-path-only) cross-shard eviction scan cheap.
const SESSION_SHARDS: usize = 8;

/// One cached prepared join plus its logical-clock LRU stamp.
#[derive(Debug)]
struct SessionEntry {
    key: SessionKey,
    handle: Arc<PreparedJoin>,
    /// Tick of the last hit or insert, from the session's global clock.
    last_used: u64,
}

/// An LRU cache of [`PreparedJoin`]s keyed by corpus and query shape, for
/// serving layers that juggle several corpora / algorithms / `k` values.
///
/// [`JoinSession::get_or_prepare`] returns the cached handle when a
/// compatible one exists — same corpus label, same [`SessionKey`] shape
/// *and* an identical resolved [`JoinPlan`] (every tuning knob) — and
/// builds + caches it otherwise, evicting the least-recently-used entry
/// beyond `capacity`.
///
/// The cache is *sharded* by request-key hash: the serving hot path (a hit)
/// locks only the one shard its key lives in, so concurrent lookups for
/// different corpora / shapes never serialize on a single mutex.  Recency is
/// a global logical clock (an atomic tick stamped on every hit/insert), and
/// `capacity` stays a *global* bound: when an insert overflows it, the
/// globally least-recently-used entry is found by a cross-shard minimum-tick
/// scan — a miss-path-only cost, taken after a prepare that is orders of
/// magnitude more expensive.
#[derive(Debug)]
pub struct JoinSession {
    ctx: ExecutionContext,
    capacity: usize,
    shards: [RankedMutex<Vec<SessionEntry>>; SESSION_SHARDS],
    /// Global logical clock ordering hits/inserts across shards.
    clock: AtomicU64,
    /// Total cached entries across shards (so `len` takes no lock).
    len: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The shard a request key lives in (ignores the epoch, which is unknowable
/// at request time and must not move an entry between shards).
fn session_shard(key: &SessionKey) -> usize {
    let mut hasher = DefaultHasher::new();
    key.corpus.hash(&mut hasher);
    key.algorithm.hash(&mut hasher);
    key.metric.hash(&mut hasher);
    key.k.hash(&mut hasher);
    (hasher.finish() % SESSION_SHARDS as u64) as usize
}

impl JoinSession {
    /// Creates a session serving from `ctx`, caching at most `capacity`
    /// prepared joins (clamped to at least 1).
    pub fn new(ctx: ExecutionContext, capacity: usize) -> Self {
        Self {
            ctx,
            capacity: capacity.max(1),
            shards: std::array::from_fn(|_| {
                RankedMutex::new(ranks::SESSION_SHARD, "session.shard", Vec::new())
            }),
            clock: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The execution context the session prepares and serves from.
    pub fn context(&self) -> &ExecutionContext {
        &self.ctx
    }

    fn tick(&self) -> u64 {
        // ORDERING: Relaxed — the clock only needs uniqueness and rough
        // recency, both of which fetch_add provides at any ordering; entries
        // stamped with a tick are themselves protected by their shard lock.
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the cached [`PreparedJoin`] compatible with `builder` over
    /// the corpus labelled `corpus`, preparing and caching it on a miss.
    ///
    /// Compatibility is the *entire* resolved plan, not just the lookup
    /// key: a cached entry under the same `(corpus, algorithm, metric, k)`
    /// whose other knobs differ (pivot count, seed, `z_window`,
    /// reducers, …) is treated as stale and replaced, never silently
    /// served — otherwise a lower-accuracy configuration could answer a
    /// request for a higher-accuracy one.
    ///
    /// # Errors
    /// Returns the builder's planning error or any build-time
    /// [`JoinError`].
    pub fn get_or_prepare(
        &self,
        corpus: &str,
        builder: crate::JoinBuilder<'_>,
    ) -> Result<Arc<PreparedJoin>, JoinError> {
        let plan = builder.plan()?;
        let key = SessionKey {
            corpus: corpus.to_string(),
            algorithm: plan.algorithm,
            metric: plan.metric,
            k: plan.k,
            epoch: 0,
        };
        // lint: allow(panic-freedom) -- `session_shard` reduces the hash
        // modulo `SESSION_SHARDS`, the array's fixed length.
        let shard = &self.shards[session_shard(&key)];
        // A hit must match the request shape, carry an identical resolved
        // plan, *and* still sit at the epoch it was cached at — a handle
        // mutated through `insert`/`delete`/`compact` since caching serves a
        // different corpus than its label promised, so it is stale.
        let take_exact_hit = |entries: &mut Vec<SessionEntry>| {
            let entry = entries.iter_mut().find(|e| {
                e.key.matches_request(&key)
                    && *e.handle.plan() == plan
                    && e.handle.epoch() == e.key.epoch
            })?;
            entry.last_used = self.tick();
            Some(Arc::clone(&entry.handle))
        };
        {
            let mut entries = shard.lock();
            if let Some(handle) = take_exact_hit(&mut entries) {
                // ORDERING: Relaxed — monotonic statistics counter only.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(handle);
            }
        }
        // Build outside the lock (preparation can be slow); a concurrent
        // preparer of the same plan may win the re-check below, in which
        // case its handle is reused and this build is dropped.
        let prepared = Arc::new(builder.prepare(&self.ctx)?);
        {
            let mut entries = shard.lock();
            if let Some(handle) = take_exact_hit(&mut entries) {
                // ORDERING: Relaxed — monotonic statistics counter only.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(handle);
            }
            // A same-request entry with a different plan or a moved epoch is
            // stale: evict it rather than leave two entries answering one
            // key (it necessarily lives in this shard — epoch is excluded
            // from the shard hash).
            if let Some(pos) = entries.iter().position(|e| e.key.matches_request(&key)) {
                entries.remove(pos);
                // ORDERING: Relaxed for the statistics counters; the `len`
                // mirror uses AcqRel so the capacity check below observes
                // every prior insert/remove.
                self.len.fetch_sub(1, Ordering::AcqRel);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // ORDERING: Relaxed — monotonic statistics counter only.
            self.misses.fetch_add(1, Ordering::Relaxed);
            entries.push(SessionEntry {
                key: SessionKey {
                    epoch: prepared.epoch(),
                    ..key
                },
                handle: Arc::clone(&prepared),
                last_used: self.tick(),
            });
            self.len.fetch_add(1, Ordering::AcqRel);
        }
        // Global capacity bound: evict the globally least-recently-used
        // entry (minimum tick across shards) while over.  Bounded retries:
        // a concurrent hit may refresh the candidate between scan and
        // removal, in which case the scan reruns.
        let mut attempts = 0;
        while self.len.load(Ordering::Acquire) > self.capacity && attempts < 16 {
            attempts += 1;
            self.evict_lru();
        }
        Ok(prepared)
    }

    /// Removes the entry with the globally minimal `last_used` tick, if any.
    /// Shards are locked one at a time (scan), then the owning shard is
    /// re-locked for the removal; a concurrent touch in between makes this a
    /// no-op and the caller rescans.
    fn evict_lru(&self) {
        let mut candidate: Option<(usize, u64)> = None;
        for (index, shard) in self.shards.iter().enumerate() {
            for entry in shard.lock().iter() {
                if candidate.is_none_or(|(_, tick)| entry.last_used < tick) {
                    candidate = Some((index, entry.last_used));
                }
            }
        }
        let Some((index, tick)) = candidate else {
            return;
        };
        // lint: allow(panic-freedom) -- `index` came from enumerating this
        // same fixed-size shard array above.
        let mut entries = self.shards[index].lock();
        if let Some(pos) = entries.iter().position(|e| e.last_used == tick) {
            entries.remove(pos);
            self.len.fetch_sub(1, Ordering::AcqRel);
            // ORDERING: Relaxed — monotonic statistics counter only.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistics read only.
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. builds) so far.
    pub fn misses(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistics read only.
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistics read only.
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of cached prepared joins.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
