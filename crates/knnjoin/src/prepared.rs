//! The prepared (build/probe) serving surface: [`PreparedJoin`] and
//! [`JoinSession`].
//!
//! Every algorithm in this crate shares a two-phase shape: an expensive
//! S-side *build* (pivot selection + Voronoi partitioning for PGBJ/PBJ,
//! per-block R-trees for H-BRJ, shifted sorted z-copies for H-zkNNJ, flat
//! staging for broadcast/nested-loop) followed by a *probe* over `R`.  The
//! one-shot [`crate::JoinBuilder::run`] fuses the two, so every call rebuilds
//! the S-side state from scratch — fine for the paper's batch experiments,
//! wasteful for a serving system answering many `R` batches against one
//! corpus.
//!
//! [`crate::JoinBuilder::prepare`] splits the phases: it captures all
//! S-side state behind a cheaply-cloneable [`PreparedJoin`] handle, and
//! [`PreparedJoin::query`] answers arbitrary `R` batches against it without
//! re-planning or rebuilding.  Across repeated queries the
//! [`crate::JoinMetrics::index_builds`] and
//! [`crate::JoinMetrics::pivot_selections`] counters stay at zero, and the
//! outputs are bit-identical (in the repo's distance-exact sense, see
//! [`crate::JoinResult::mismatch_against`]) to what the cold path produces —
//! the exact algorithms by the theorems' exactness, H-zkNNJ because the
//! resident sorted copies reproduce the cold candidate windows verbatim.
//!
//! ```
//! use datagen::uniform;
//! use knnjoin::{Algorithm, ExecutionContext, JoinBuilder};
//!
//! let corpus = uniform(300, 2, 100.0, 1);
//! let batch = uniform(50, 2, 100.0, 2);
//! let ctx = ExecutionContext::default();
//!
//! // Build once...
//! let prepared = JoinBuilder::new(&batch, &corpus)
//!     .k(5)
//!     .algorithm(Algorithm::Pgbj)
//!     .prepare(&ctx)
//!     .unwrap();
//! // ...serve many batches.
//! let result = prepared.query(&batch).unwrap();
//! assert_eq!(result.len(), 50);
//! assert_eq!(result.metrics.index_builds, 0);
//! assert_eq!(result.metrics.pivot_selections, 0);
//! ```

use crate::algorithms::{BroadcastPrepared, HbrjPrepared, PbjPrepared, PgbjPrepared, ZknnPrepared};
use crate::context::{ExecutionContext, ServingStats};
use crate::exact::NestedLoopPrepared;
use crate::metrics::JoinMetrics;
use crate::plan::{Algorithm, JoinPlan};
use crate::result::{JoinError, JoinResult, JoinRow, ResultSink};
use geom::{DistanceMetric, Point, PointSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The per-algorithm S-side state (see each algorithm module's `*Prepared`
/// type for what exactly is captured).
#[derive(Debug)]
enum PreparedState {
    Pgbj(PgbjPrepared),
    Pbj(PbjPrepared),
    Hbrj(HbrjPrepared),
    Zknn(ZknnPrepared),
    Broadcast(BroadcastPrepared),
    NestedLoop(NestedLoopPrepared),
}

#[derive(Debug)]
struct Inner {
    plan: JoinPlan,
    ctx: ExecutionContext,
    s_len: usize,
    s_dims: usize,
    state: PreparedState,
    build_metrics: JoinMetrics,
    build_time: Duration,
    queries: AtomicU64,
    query_nanos: AtomicU64,
    cumulative: Mutex<JoinMetrics>,
}

/// A join whose S-side state has been built once and can serve arbitrary `R`
/// batches.
///
/// Created by [`crate::JoinBuilder::prepare`].  Cloning is cheap (the state
/// sits behind an [`Arc`]) and clones share the serving statistics, like
/// several request handlers serving one resident index.
#[derive(Debug, Clone)]
pub struct PreparedJoin {
    inner: Arc<Inner>,
}

impl PreparedJoin {
    /// Builds the S-side state for the given validated plan.
    /// `calibration_r` is the builder's `R`: it seeds pivot selection and
    /// the z-domain exactly as the cold path would, so `query` over the same
    /// batch reproduces [`crate::JoinBuilder::run`] bit for bit; the built
    /// state remains valid for every other batch because no bound depends on
    /// where the pivots (or the quantization domain) came from.
    pub(crate) fn build(
        calibration_r: &PointSet,
        s: &PointSet,
        plan: JoinPlan,
        ctx: &ExecutionContext,
    ) -> Result<Self, JoinError> {
        let mut build_metrics = JoinMetrics {
            s_size: s.len(),
            ..Default::default()
        };
        let start = Instant::now();
        let state = match plan.algorithm {
            Algorithm::Pgbj => PreparedState::Pgbj(PgbjPrepared::build(
                calibration_r,
                s,
                &plan,
                &mut build_metrics,
            )),
            Algorithm::Pbj => PreparedState::Pbj(PbjPrepared::build(
                calibration_r,
                s,
                &plan,
                &mut build_metrics,
            )),
            Algorithm::Hbrj => {
                PreparedState::Hbrj(HbrjPrepared::build(s, &plan, &mut build_metrics))
            }
            Algorithm::Zknn => PreparedState::Zknn(ZknnPrepared::build(
                calibration_r,
                s,
                &plan,
                &mut build_metrics,
            )),
            Algorithm::BroadcastJoin => {
                PreparedState::Broadcast(BroadcastPrepared::build(s, &mut build_metrics))
            }
            Algorithm::NestedLoopJoin => {
                PreparedState::NestedLoop(NestedLoopPrepared::build(s, &mut build_metrics))
            }
        };
        let build_time = start.elapsed();
        Ok(Self {
            inner: Arc::new(Inner {
                s_len: s.len(),
                s_dims: s.dims(),
                ctx: ctx.clone(),
                plan,
                state,
                build_metrics,
                build_time,
                queries: AtomicU64::new(0),
                query_nanos: AtomicU64::new(0),
                cumulative: Mutex::new(JoinMetrics::default()),
            }),
        })
    }

    /// The validated plan this join serves.
    pub fn plan(&self) -> &JoinPlan {
        &self.inner.plan
    }

    /// The algorithm behind the handle.
    pub fn algorithm(&self) -> Algorithm {
        self.inner.plan.algorithm
    }

    /// Neighbours returned per probe object.
    pub fn k(&self) -> usize {
        self.inner.plan.k
    }

    /// The distance metric.
    pub fn metric(&self) -> DistanceMetric {
        self.inner.plan.metric
    }

    /// Size of the resident `S` corpus.
    pub fn s_len(&self) -> usize {
        self.inner.s_len
    }

    /// The metrics of the build phase (pivot selection, partitioning, index
    /// builds); per-query metrics never include these costs again.
    pub fn build_metrics(&self) -> &JoinMetrics {
        &self.inner.build_metrics
    }

    /// Serving statistics: queries answered, build time, cumulative query
    /// time (amortization helpers included).
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            queries: self.inner.queries.load(Ordering::Relaxed),
            build_time: self.inner.build_time,
            total_query_time: Duration::from_nanos(self.inner.query_nanos.load(Ordering::Relaxed)),
        }
    }

    /// The session-wide accumulation of every query's [`JoinMetrics`]
    /// (shared across clones of the handle).
    pub fn cumulative_metrics(&self) -> JoinMetrics {
        self.inner.cumulative.lock().expect("metrics lock").clone()
    }

    /// Validates a probe batch against the prepared corpus, then runs the
    /// algorithm's probe.
    fn run_probe(&self, r: &PointSet) -> Result<(Vec<JoinRow>, JoinMetrics), JoinError> {
        if r.is_empty() {
            return Err(JoinError::EmptyInput("R"));
        }
        if let Some((index, dims)) = r.first_dim_mismatch() {
            return Err(JoinError::RaggedInput {
                dataset: "R",
                index,
                dims,
                expected: r.dims(),
            });
        }
        if r.dims() != self.inner.s_dims {
            return Err(JoinError::DimensionalityMismatch {
                r_dims: r.dims(),
                s_dims: self.inner.s_dims,
            });
        }
        let inner = &*self.inner;
        let mut metrics = JoinMetrics {
            r_size: r.len(),
            s_size: inner.s_len,
            ..Default::default()
        };
        let start = Instant::now();
        let mut rows = match &inner.state {
            PreparedState::Pgbj(p) => p.probe(r, &inner.plan, &inner.ctx, &mut metrics)?,
            PreparedState::Pbj(p) => p.probe(r, &inner.plan, &inner.ctx, &mut metrics)?,
            PreparedState::Hbrj(p) => p.probe(r, &inner.plan, &inner.ctx, &mut metrics)?,
            PreparedState::Zknn(p) => p.probe(r, &inner.plan, &inner.ctx, &mut metrics)?,
            PreparedState::Broadcast(p) => p.probe(r, &inner.plan, &inner.ctx, &mut metrics)?,
            PreparedState::NestedLoop(p) => {
                p.probe(r, inner.plan.k, inner.plan.metric, &mut metrics)
            }
        };
        let elapsed = start.elapsed();
        rows.sort_by_key(|row| row.r_id);
        for row in &mut rows {
            row.neighbors.sort();
        }
        inner.queries.fetch_add(1, Ordering::Relaxed);
        inner
            .query_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        inner
            .cumulative
            .lock()
            .expect("metrics lock")
            .absorb(&metrics);
        inner.ctx.record_join(inner.plan.algorithm.name(), &metrics);
        Ok((rows, metrics))
    }

    /// Answers one probe batch: the `k` nearest resident `S` objects of every
    /// object of `r`.
    ///
    /// # Errors
    /// Returns [`JoinError`] when the batch is empty, ragged, of the wrong
    /// dimensionality, or the substrate fails.
    pub fn query(&self, r: &PointSet) -> Result<JoinResult, JoinError> {
        let (rows, metrics) = self.run_probe(r)?;
        Ok(JoinResult { rows, metrics })
    }

    /// Answers a single-point query: the `k` nearest resident `S` objects of
    /// `point`.
    ///
    /// # Errors
    /// Returns [`JoinError`] on a dimensionality mismatch or substrate
    /// failure.
    pub fn query_one(&self, point: &Point) -> Result<JoinRow, JoinError> {
        let singleton = PointSet::from_points(vec![point.clone()]);
        let (mut rows, _) = self.run_probe(&singleton)?;
        Ok(rows.pop().expect("one row per probe object"))
    }

    /// Streams one probe batch's rows (in `r_id` order) into `sink` instead
    /// of materializing a [`JoinResult`], returning only the query's
    /// metrics.  Use this to serve large `R` without holding `|R| · k`
    /// neighbours alive in one result value.
    ///
    /// # Errors
    /// Same conditions as [`PreparedJoin::query`].
    pub fn query_into(
        &self,
        r: &PointSet,
        sink: &mut dyn ResultSink,
    ) -> Result<JoinMetrics, JoinError> {
        let (rows, metrics) = self.run_probe(r)?;
        for row in rows {
            sink.accept(row);
        }
        Ok(metrics)
    }
}

/// The key a [`JoinSession`] caches prepared joins under: a caller-chosen
/// corpus label plus the query-compatibility knobs (algorithm, metric, `k`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Caller-chosen corpus label (which `S` the state was built over).
    pub corpus: String,
    /// Algorithm of the cached state.
    pub algorithm: Algorithm,
    /// Metric of the cached state.
    pub metric: DistanceMetric,
    /// `k` of the cached state.
    pub k: usize,
}

/// An LRU cache of [`PreparedJoin`]s keyed by corpus and query shape, for
/// serving layers that juggle several corpora / algorithms / `k` values.
///
/// [`JoinSession::get_or_prepare`] returns the cached handle when a
/// compatible one exists — same corpus label, same [`SessionKey`] shape
/// *and* an identical resolved [`JoinPlan`] (every tuning knob) — and
/// builds + caches it otherwise, evicting the least-recently-used entry
/// beyond `capacity`.
#[derive(Debug)]
pub struct JoinSession {
    ctx: ExecutionContext,
    capacity: usize,
    /// LRU order: least-recently-used first.
    entries: Mutex<Vec<(SessionKey, Arc<PreparedJoin>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl JoinSession {
    /// Creates a session serving from `ctx`, caching at most `capacity`
    /// prepared joins (clamped to at least 1).
    pub fn new(ctx: ExecutionContext, capacity: usize) -> Self {
        Self {
            ctx,
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The execution context the session prepares and serves from.
    pub fn context(&self) -> &ExecutionContext {
        &self.ctx
    }

    /// Returns the cached [`PreparedJoin`] compatible with `builder` over
    /// the corpus labelled `corpus`, preparing and caching it on a miss.
    ///
    /// Compatibility is the *entire* resolved plan, not just the lookup
    /// key: a cached entry under the same `(corpus, algorithm, metric, k)`
    /// whose other knobs differ (pivot count, seed, `z_window`,
    /// reducers, …) is treated as stale and replaced, never silently
    /// served — otherwise a lower-accuracy configuration could answer a
    /// request for a higher-accuracy one.
    ///
    /// # Errors
    /// Returns the builder's planning error or any build-time
    /// [`JoinError`].
    pub fn get_or_prepare(
        &self,
        corpus: &str,
        builder: crate::JoinBuilder<'_>,
    ) -> Result<Arc<PreparedJoin>, JoinError> {
        let plan = builder.plan()?;
        let key = SessionKey {
            corpus: corpus.to_string(),
            algorithm: plan.algorithm,
            metric: plan.metric,
            k: plan.k,
        };
        let take_exact_hit = |entries: &mut Vec<(SessionKey, Arc<PreparedJoin>)>| {
            let pos = entries
                .iter()
                .position(|(k, handle)| *k == key && *handle.plan() == plan)?;
            let entry = entries.remove(pos);
            let handle = Arc::clone(&entry.1);
            entries.push(entry);
            Some(handle)
        };
        {
            let mut entries = self.entries.lock().expect("session lock");
            if let Some(handle) = take_exact_hit(&mut entries) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(handle);
            }
        }
        // Build outside the lock (preparation can be slow); a concurrent
        // preparer of the same plan may win the re-check below, in which
        // case its handle is reused and this build is dropped.
        let prepared = Arc::new(builder.prepare(&self.ctx)?);
        let mut entries = self.entries.lock().expect("session lock");
        if let Some(handle) = take_exact_hit(&mut entries) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(handle);
        }
        // A same-key entry with a different plan is stale for this request:
        // evict it rather than leave two entries answering one key.
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            entries.remove(pos);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        entries.push((key, Arc::clone(&prepared)));
        if entries.len() > self.capacity {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(prepared)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of cached prepared joins.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("session lock").len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
