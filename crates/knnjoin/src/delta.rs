//! The mutable-corpus delta layer: the S-side memtable a
//! [`crate::PreparedJoin`] accumulates inserts and deletes in.
//!
//! The paper's join structures (Voronoi cells + summaries, per-block
//! R-trees, sorted z-copies) are batch-built: none of them absorbs a
//! mutation in place.  Instead of rebuilding on every change, the prepared
//! join follows the log-structured discipline of LSM stores: mutations land
//! in a small resident [`DeltaOverlay`] — an append log of added points plus
//! a tombstone set of deleted ids — and every probe merges the overlay with
//! the frozen structures through the shared top-k accumulator.  When the
//! overlay outgrows the plan's `delta_threshold`, a *compaction* folds it
//! into the frozen structures (rebuilding only the affected Voronoi cells /
//! R-trees / z-runs) and publishes a new epoch with an empty overlay.
//!
//! The correctness bar is DBSP-style: a query against the mutated corpus
//! must be distance-identical to the same query against a cold build over
//! the materialized corpus (frozen minus tombstones, plus adds).  The
//! overlay maintains one invariant that makes the live corpus a disjoint
//! union: an added id is never simultaneously live on the frozen side
//! (re-inserting a frozen id tombstones the frozen copy first), so
//!
//! ```text
//! live = (frozen \ tombstones) ∪ adds        |live| = |frozen| − t + a
//! ```
//!
//! Epoch/snapshot semantics, the mutation API and compaction live in
//! [`crate::prepared`]; this module owns the overlay itself and the
//! observability types.

use geom::PointId;
use std::collections::{BTreeMap, BTreeSet};

/// The resident S-delta memtable: points added since the last compaction
/// (keyed by id, so re-inserts are upserts) plus the tombstoned frozen ids.
///
/// The overlay is an immutable snapshot from a reader's point of view:
/// mutations clone it, apply the change and publish the copy under a new
/// epoch, so in-flight queries keep scanning the overlay they started with.
/// Iteration orders (`BTreeMap` / `BTreeSet`) are deterministic, which keeps
/// the delta-probe counters reproducible for the bench harness.
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    /// Added (or re-inserted) points: id → coordinates.
    adds: BTreeMap<PointId, Vec<f64>>,
    /// Frozen ids masked from every probe until compaction drops them.
    tombstones: BTreeSet<PointId>,
}

impl DeltaOverlay {
    /// Whether the overlay holds no pending work.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.tombstones.is_empty()
    }

    /// Pending delta entries (adds plus tombstones) — the quantity compared
    /// against the plan's `delta_threshold`.
    pub fn len(&self) -> usize {
        self.adds.len() + self.tombstones.len()
    }

    /// Number of added points pending.
    pub fn adds_len(&self) -> usize {
        self.adds.len()
    }

    /// Number of tombstoned frozen ids pending.
    pub fn tombstones_len(&self) -> usize {
        self.tombstones.len()
    }

    /// Whether `id`'s frozen copy is masked.
    pub fn is_tombstoned(&self, id: PointId) -> bool {
        self.tombstones.contains(&id)
    }

    /// Whether `id` is currently an added point.
    pub fn is_added(&self, id: PointId) -> bool {
        self.adds.contains_key(&id)
    }

    /// The added points in ascending id order.
    pub fn adds(&self) -> impl Iterator<Item = (PointId, &[f64])> + '_ {
        self.adds.iter().map(|(id, c)| (*id, c.as_slice()))
    }

    /// The tombstoned ids in ascending order.
    pub fn tombstones(&self) -> impl Iterator<Item = PointId> + '_ {
        self.tombstones.iter().copied()
    }

    /// Adds (or replaces) an added point.
    pub(crate) fn insert_add(&mut self, id: PointId, coords: Vec<f64>) {
        self.adds.insert(id, coords);
    }

    /// Removes an added point, reporting whether it was present.
    pub(crate) fn remove_add(&mut self, id: PointId) -> bool {
        self.adds.remove(&id).is_some()
    }

    /// Tombstones a frozen id, reporting whether it was newly tombstoned.
    /// Tombstones are only ever cleared by compaction.
    pub(crate) fn tombstone(&mut self, id: PointId) -> bool {
        self.tombstones.insert(id)
    }

    /// Structural invariant audit, asserted on every mutation commit under
    /// `cfg(test)` and the `debug-invariants` feature:
    ///
    /// 1. an added id never duplicates a *live* frozen id (re-inserting a
    ///    frozen id must tombstone the frozen copy first, or `live_len`
    ///    arithmetic and probe masking both break), and
    /// 2. tombstones only name frozen ids (a tombstone for a never-frozen id
    ///    would make `|frozen| − t + a` undercount the live corpus).
    #[cfg(any(test, feature = "debug-invariants"))]
    pub(crate) fn audit(&self, frozen_ids: &BTreeSet<PointId>) {
        for (id, _) in self.adds.iter() {
            assert!(
                !frozen_ids.contains(id) || self.tombstones.contains(id),
                "delta invariant violated: add {id} duplicates a live frozen id \
                 (frozen copy not tombstoned)"
            );
        }
        for id in &self.tombstones {
            assert!(
                frozen_ids.contains(id),
                "delta invariant violated: tombstone {id} names an id absent \
                 from the frozen corpus"
            );
        }
    }
}

/// A snapshot of a [`crate::PreparedJoin`]'s delta layer, for observability
/// (the mutable-corpus bench and example print these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Current corpus epoch (0 at build; every mutation and compaction
    /// advances it).
    pub epoch: u64,
    /// Added points pending in the overlay.
    pub pending_adds: usize,
    /// Tombstoned frozen ids pending in the overlay.
    pub pending_tombstones: usize,
    /// Compactions run since the join was prepared.
    pub compactions: u64,
    /// Points re-laid-out into frozen structures by those compactions.
    pub compacted_points: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_tracks_adds_and_tombstones_independently() {
        let mut d = DeltaOverlay::default();
        assert!(d.is_empty());
        d.insert_add(7, vec![1.0, 2.0]);
        d.insert_add(3, vec![0.0, 0.0]);
        d.tombstone(9);
        assert_eq!(d.len(), 3);
        assert_eq!((d.adds_len(), d.tombstones_len()), (2, 1));
        assert!(d.is_added(7) && !d.is_added(9));
        assert!(d.is_tombstoned(9) && !d.is_tombstoned(7));
        // Deterministic ascending-id iteration.
        let ids: Vec<PointId> = d.adds().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![3, 7]);
        // Upsert replaces in place.
        d.insert_add(7, vec![5.0, 5.0]);
        assert_eq!(d.adds_len(), 2);
        assert!(d.remove_add(7));
        assert!(!d.remove_add(7));
        // Tombstoning twice reports only the first as new.
        assert!(!d.tombstone(9));
        assert!(d.tombstone(10));
    }
}
