//! The workspace invariant tables the lint pass enforces.
//!
//! Everything here is policy, not mechanism: which files may contain
//! `unsafe`, which files are on the user-reachable panic-freedom perimeter,
//! which files feed deterministic counters, and the declared lock-order
//! table.  The fixture tests swap in narrowed configs so each known-bad
//! snippet trips exactly one lint.

use std::path::PathBuf;

/// One entry of the declared lock-order table: in `file`, a guard obtained
/// from a receiver named `receiver` (`receiver.lock()` / `.read()` /
/// `.write()`) carries `rank`.  Ranks must strictly increase along any
/// nesting chain; equal ranks may never nest (shards of one family).
///
/// The table mirrors `mapreduce::sync::ranks` — the runtime auditor checks
/// the same order dynamically under the `debug-invariants` feature.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Workspace-relative path, `/`-separated.
    pub file: &'static str,
    /// The identifier immediately before the acquisition call.
    pub receiver: &'static str,
    /// Rank from `mapreduce::sync::ranks`.
    pub rank: u8,
}

/// Full configuration for one lint run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root all paths are relative to.
    pub root: PathBuf,
    /// Files allowed to contain `unsafe` (checked by `safety-comment`
    /// instead of flatly rejected by `unsafe-containment`).
    pub allowed_unsafe: Vec<String>,
    /// Library files on user-reachable paths: no unwrap/expect/panic!/todo!/
    /// unimplemented! and no `[]` indexing outside test regions.
    pub user_reachable: Vec<String>,
    /// Files feeding deterministic counters: no `Instant`, `SystemTime`,
    /// `HashMap` or `HashSet` at all.
    pub determinism_strict: Vec<String>,
    /// Files (or directory prefixes ending in `/`) producing `BENCH_*.json`
    /// values: no `HashMap`/`HashSet`/`SystemTime` (wall-clock `Instant`
    /// readings are allowed — they are excluded from drift checks).
    pub determinism_no_maps: Vec<String>,
    /// The declared lock-order table.
    pub lock_table: Vec<LockSite>,
    /// Call fragments a held guard must never span (`guard-across-probe`).
    pub probe_calls: Vec<&'static str>,
    /// The experiments binary whose `*_FIELDS` drift tables are cross-checked
    /// against real identifiers, when present.
    pub drift_fields_file: Option<String>,
}

impl Config {
    /// The real workspace policy.
    pub fn workspace(root: PathBuf) -> Self {
        Self {
            root,
            allowed_unsafe: vec!["crates/geom/src/kernels.rs".into()],
            user_reachable: vec![
                "crates/knnjoin/src/builder.rs".into(),
                "crates/knnjoin/src/plan.rs".into(),
                "crates/knnjoin/src/prepared.rs".into(),
                "crates/knnjoin/src/result.rs".into(),
                "crates/knnjoin/src/serving/mod.rs".into(),
                "crates/knnjoin/src/delta.rs".into(),
                "crates/knnjoin/src/context.rs".into(),
                "crates/knnjoin/src/lib.rs".into(),
                "src/lib.rs".into(),
            ],
            determinism_strict: vec![
                "crates/knnjoin/src/metrics.rs".into(),
                "crates/mapreduce/src/counters.rs".into(),
                "crates/mapreduce/src/metrics.rs".into(),
            ],
            determinism_no_maps: vec![
                "crates/bench/src/json.rs".into(),
                "crates/bench/src/report.rs".into(),
                "crates/bench/src/bin/experiments.rs".into(),
                "crates/bench/src/experiments/".into(),
            ],
            lock_table: vec![
                LockSite {
                    file: "crates/knnjoin/src/prepared.rs",
                    receiver: "mutate",
                    rank: 10,
                },
                LockSite {
                    file: "crates/knnjoin/src/prepared.rs",
                    receiver: "epoch",
                    rank: 20,
                },
                LockSite {
                    file: "crates/knnjoin/src/prepared.rs",
                    receiver: "shard",
                    rank: 30,
                },
                LockSite {
                    file: "crates/knnjoin/src/prepared.rs",
                    receiver: "shards",
                    rank: 30,
                },
                LockSite {
                    file: "crates/knnjoin/src/prepared.rs",
                    receiver: "cumulative",
                    rank: 40,
                },
                LockSite {
                    file: "crates/knnjoin/src/context.rs",
                    receiver: "shard",
                    rank: 50,
                },
                LockSite {
                    file: "crates/knnjoin/src/context.rs",
                    receiver: "shards",
                    rank: 50,
                },
                LockSite {
                    file: "crates/knnjoin/src/serving/mod.rs",
                    receiver: "shard",
                    rank: 60,
                },
                LockSite {
                    file: "crates/knnjoin/src/serving/mod.rs",
                    receiver: "histograms",
                    rank: 60,
                },
                LockSite {
                    file: "crates/mapreduce/src/engine.rs",
                    receiver: "queue",
                    rank: 70,
                },
                LockSite {
                    file: "crates/mapreduce/src/engine.rs",
                    receiver: "slot",
                    rank: 80,
                },
                LockSite {
                    file: "crates/mapreduce/src/engine.rs",
                    receiver: "slots",
                    rank: 80,
                },
                LockSite {
                    file: "crates/mapreduce/src/counters.rs",
                    receiver: "inner",
                    rank: 90,
                },
                LockSite {
                    file: "crates/mapreduce/src/dfs.rs",
                    receiver: "name_node",
                    rank: 100,
                },
            ],
            probe_calls: default_probe_calls(),
            drift_fields_file: Some("crates/bench/src/bin/experiments.rs".into()),
        }
    }

    /// An empty policy with no perimeter files — the fixture tests start
    /// from this and enable exactly the table the lint under test reads.
    pub fn empty(root: PathBuf) -> Self {
        Self {
            root,
            allowed_unsafe: Vec::new(),
            user_reachable: Vec::new(),
            determinism_strict: Vec::new(),
            determinism_no_maps: Vec::new(),
            lock_table: Vec::new(),
            probe_calls: default_probe_calls(),
            drift_fields_file: None,
        }
    }

    /// Whether `rel_path` is inside the `determinism_no_maps` perimeter.
    pub fn in_no_maps_perimeter(&self, rel_path: &str) -> bool {
        self.determinism_no_maps.iter().any(|p| {
            if p.ends_with('/') {
                rel_path.starts_with(p.as_str())
            } else {
                rel_path == p
            }
        })
    }
}

fn default_probe_calls() -> Vec<&'static str> {
    vec![
        ".probe(",
        ".run(",
        ".query(",
        ".query_one(",
        ".query_into(",
        ".prepare(",
        "run_job(",
    ]
}
