//! A small hand-rolled Rust source scanner — no `syn`, no dependencies.
//!
//! The lint pass does not need a real parse tree; it needs to look at source
//! text *without being fooled by* comments, string/char literals and raw
//! strings.  The scanner produces, for each file:
//!
//! * a **code view**: the original text with every comment (markers
//!   included) and every literal's *contents* replaced by spaces, byte for
//!   byte, so offsets and line numbers are preserved and identifier /
//!   punctuation scans can't match inside prose;
//! * the **comment list**: each comment line's text with its 1-based line
//!   number (block comments contribute one entry per line), for the
//!   comment-driven lints (`// SAFETY:`, `// ORDERING:`, suppressions);
//! * **test regions**: the line ranges of `#[cfg(test)] mod … { … }` and
//!   `#[test] fn … { … }` items, found by brace-matching over the code
//!   view, so lints can exempt test code and the parity lint can require
//!   that scalar twins are *named* in one.

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// The original text.
    pub text: String,
    /// Same length as `text`: comments and literal contents blanked.
    pub code: String,
    /// `(1-based line, comment text)` — one entry per comment line.
    pub comments: Vec<(usize, String)>,
    /// Byte offset of each line start in `text`/`code`.
    pub line_starts: Vec<usize>,
    /// Inclusive 1-based line ranges of test items.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Scans `text` into a [`SourceFile`].
    pub fn scan(rel_path: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let (code, comments) = blank(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut file = Self {
            rel_path: rel_path.into(),
            text,
            code,
            comments,
            line_starts,
            test_regions: Vec::new(),
        };
        file.test_regions = find_test_regions(&file);
        file
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The code view of a 1-based line (without the trailing newline).
    pub fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.code.len(), |&next| next.saturating_sub(1));
        &self.code[start..end.max(start)]
    }

    /// Whether a 1-based line falls inside a test region.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| line >= start && line <= end)
    }

    /// The comment texts on exactly this 1-based line.
    pub fn comments_on(&self, line: usize) -> impl Iterator<Item = &str> + '_ {
        self.comments
            .iter()
            .filter(move |&&(l, _)| l == line)
            .map(|(_, text)| text.as_str())
    }
}

/// Scanner state for [`blank`].
enum State {
    Code,
    LineComment,
    /// Nested block comments, with current depth.
    BlockComment(usize),
    /// Inside `"…"`; the flag notes a pending escape.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##`; the count is the number of `#`s.
    RawStr(usize),
    /// Inside `'…'`; the flag notes a pending escape.
    Char {
        escaped: bool,
    },
}

/// Produces the blanked code view and the comment list.
fn blank(text: &str) -> (String, Vec<(usize, String)>) {
    let bytes = text.as_bytes();
    let mut code: Vec<u8> = bytes.to_vec();
    let mut comments = Vec::new();
    let mut comment_start: Option<usize> = None;
    let mut line = 1usize;
    let mut state = State::Code;
    let mut i = 0usize;

    // Replaces a byte with a space unless it is a newline (multi-byte UTF-8
    // continuation bytes are blanked like any other non-newline byte).
    let blank_at = |code: &mut Vec<u8>, at: usize| {
        if code[at] != b'\n' {
            code[at] = b' ';
        }
    };
    // Flushes one comment line (from `start` to `i`, exclusive).
    let push_comment =
        |comments: &mut Vec<(usize, String)>, line: usize, start: usize, end: usize| {
            comments.push((line, text[start..end].to_string()));
        };

    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    comment_start = Some(i);
                    blank_at(&mut code, i);
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    comment_start = Some(i);
                    blank_at(&mut code, i);
                    blank_at(&mut code, i + 1);
                    i += 1;
                } else if b == b'"' {
                    state = State::Str { escaped: false };
                } else if b == b'r' || b == b'b' || b == b'c' {
                    // Possible raw/byte/C string prefix: r", br", b", c", r#".
                    // An identifier character before the prefix means this is
                    // just the tail of an identifier (e.g. `ptr`), not a
                    // literal prefix.
                    let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = b != b'c' && (hashes > 0 || bytes.get(i + 1) == Some(&b'r'))
                        || (b == b'r' && hashes == 0 && bytes.get(j) == Some(&b'"'));
                    if !prev_ident && bytes.get(j) == Some(&b'"') {
                        if is_raw || hashes > 0 {
                            state = State::RawStr(hashes);
                        } else {
                            state = State::Str { escaped: false };
                        }
                        i = j;
                    } else if !prev_ident && b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                        state = State::Char { escaped: false };
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Char literal or lifetime: 'x' / '\n' are chars, 'a in
                    // `&'a T` is a lifetime (no closing quote right after).
                    let next = bytes.get(i + 1).copied();
                    let after = bytes.get(i + 2).copied();
                    if next == Some(b'\\') || after == Some(b'\'') {
                        state = State::Char { escaped: false };
                    }
                    // else: lifetime — leave as code.
                }
                if b == b'\n' {
                    line += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    if let Some(start) = comment_start.take() {
                        push_comment(&mut comments, line, start, i);
                    }
                    state = State::Code;
                    line += 1;
                } else {
                    blank_at(&mut code, i);
                }
            }
            State::BlockComment(depth) => {
                if b == b'\n' {
                    if let Some(start) = comment_start.take() {
                        push_comment(&mut comments, line, start, i);
                    }
                    comment_start = Some(i + 1);
                    line += 1;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    blank_at(&mut code, i);
                    blank_at(&mut code, i + 1);
                    i += 1;
                    state = State::BlockComment(depth + 1);
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    blank_at(&mut code, i);
                    blank_at(&mut code, i + 1);
                    i += 1;
                    if depth == 1 {
                        if let Some(start) = comment_start.take() {
                            push_comment(&mut comments, line, start, i + 1);
                        }
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else {
                    blank_at(&mut code, i);
                }
            }
            State::Str { escaped } => {
                if b == b'\n' {
                    line += 1;
                    state = State::Str { escaped: false };
                } else if escaped {
                    blank_at(&mut code, i);
                    state = State::Str { escaped: false };
                } else if b == b'\\' {
                    blank_at(&mut code, i);
                    state = State::Str { escaped: true };
                } else if b == b'"' {
                    state = State::Code;
                } else {
                    blank_at(&mut code, i);
                }
            }
            State::RawStr(hashes) => {
                if b == b'\n' {
                    line += 1;
                } else if b == b'"' {
                    let mut matched = 0usize;
                    while matched < hashes && bytes.get(i + 1 + matched) == Some(&b'#') {
                        matched += 1;
                    }
                    if matched == hashes {
                        i += hashes;
                        state = State::Code;
                    } else {
                        blank_at(&mut code, i);
                    }
                } else {
                    blank_at(&mut code, i);
                }
            }
            State::Char { escaped } => {
                if escaped {
                    blank_at(&mut code, i);
                    state = State::Char { escaped: false };
                } else if b == b'\\' {
                    blank_at(&mut code, i);
                    state = State::Char { escaped: true };
                } else if b == b'\'' {
                    state = State::Code;
                } else {
                    if b == b'\n' {
                        line += 1;
                    }
                    blank_at(&mut code, i);
                }
            }
        }
        i += 1;
    }
    if let (State::LineComment | State::BlockComment(_), Some(start)) = (&state, comment_start) {
        push_comment(&mut comments, line, start, bytes.len());
    }
    // The blanking never touches multi-byte boundaries destructively (every
    // replaced byte becomes ASCII space), so this cannot fail on valid input.
    let code = String::from_utf8_lossy(&code).into_owned();
    (code, comments)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `#[cfg(test)] mod … { … }` and `#[test] fn … { … }` line ranges by
/// brace-matching over the code view.
fn find_test_regions(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let code = &file.code;
    for (needle, keyword) in [("#[cfg(test)]", "mod"), ("#[test]", "fn")] {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(needle) {
            let attr_at = from + pos;
            from = attr_at + needle.len();
            // The keyword must follow within the next few tokens (other
            // attributes may sit in between).
            let window_end = (attr_at + 400).min(code.len());
            let window = &code[attr_at..window_end];
            let Some(kw_rel) = find_word(window, keyword) else {
                continue;
            };
            let Some(open_rel) = window[kw_rel..].find('{') else {
                continue;
            };
            let open = attr_at + kw_rel + open_rel;
            let Some(close) = match_brace(code, open) else {
                continue;
            };
            regions.push((file.line_of(attr_at), file.line_of(close)));
        }
    }
    regions
}

/// Byte offset of the first whole-word occurrence of `word` in `haystack`.
pub fn find_word(haystack: &str, word: &str) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// All whole-word occurrence offsets of `word` in `haystack`.
pub fn find_words(haystack: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = find_word(&haystack[from..], word) {
        out.push(from + rel);
        from += rel + word.len();
    }
    out
}

/// Offset of the `}` matching the `{` at `open` in a blanked code view.
pub fn match_brace(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unsafe { }\"; // unwrap in comment\nlet y = 1;\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.code.contains("unsafe"));
        assert!(!f.code.contains("unwrap"));
        assert!(f.code.contains("let y = 1;"));
        assert_eq!(f.comments.len(), 1);
        assert_eq!(f.comments[0].0, 1);
        assert!(f.comments[0].1.contains("unwrap in comment"));
        // Quotes survive so call shapes like `.expect(` stay detectable.
        assert!(f.code.contains("let x = \"          \";"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_are_not() {
        let src = "let r = r#\"panic!()\"#; let c = '\\n'; fn f<'a>(x: &'a u8) {}\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.code.contains("panic"));
        assert!(f.code.contains("<'a>"));
        assert!(f.code.contains("&'a u8"));
    }

    #[test]
    fn block_comments_nest_and_split_per_line() {
        let src = "/* outer /* inner */ still\ncomment */ let z = 2;\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(f.code.contains("let z = 2;"));
        assert!(!f.code.contains("outer"));
        assert_eq!(f.comments.len(), 2);
        assert_eq!((f.comments[0].0, f.comments[1].0), (1, 2));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(5));
    }

    #[test]
    fn word_search_respects_boundaries() {
        assert_eq!(find_word("let unwrapped = 1;", "unwrap"), None);
        assert!(find_word("x.unwrap()", "unwrap").is_some());
        assert_eq!(find_words("a mod b mod c", "mod").len(), 2);
    }
}
