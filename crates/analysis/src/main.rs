//! CLI for the workspace invariant checker.
//!
//! ```text
//! analysis check [--deny-all] [--allow <lint>]… [--root <path>]
//! analysis list
//! ```
//!
//! `check` exits non-zero if any finding survives suppressions; `--allow`
//! disables a lint wholesale (ignored under `--deny-all`, the CI mode);
//! `list` prints the lint names.

use analysis::{check_workspace, default_root, Config, LINTS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for lint in LINTS {
                println!("{lint}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!("usage: analysis check [--deny-all] [--allow <lint>]… [--root <path>]");
            eprintln!("       analysis list");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut deny_all = false;
    let mut allow: Vec<String> = Vec::new();
    let mut root = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--allow" => match it.next() {
                Some(name) if LINTS.contains(&name.as_str()) => allow.push(name.clone()),
                Some(name) => {
                    eprintln!("error: unknown lint `{name}` (see `analysis list`)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --allow needs a lint name");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(path) => root = Some(path.into()),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if deny_all {
        allow.clear();
    }

    let cfg = Config::workspace(root.unwrap_or_else(default_root));
    let findings = match check_workspace(&cfg, &allow) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("error: failed to scan {}: {err}", cfg.root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!(
            "analysis: workspace clean ({} lints{})",
            LINTS.len(),
            if deny_all { ", deny-all" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        println!("analysis: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
