//! The lint pass: every workspace invariant, checked against the scanned
//! sources.
//!
//! Each lint has a stable kebab-case name and can be suppressed at a single
//! site with a comment of the form
//!
//! ```text
//! // lint: allow(<name>) -- <reason>
//! ```
//!
//! on the offending line, or on the comment block immediately above the
//! offending statement.  The reason is mandatory; a suppression without one
//! (or naming an unknown lint) is itself reported under `suppression-syntax`,
//! which cannot be suppressed.

use crate::config::Config;
use crate::lexer::{find_word, find_words, SourceFile};

/// Every lint the pass knows, in reporting order.
pub const LINTS: &[&str] = &[
    "unsafe-containment",
    "safety-comment",
    "target-feature-parity",
    "panic-freedom",
    "determinism",
    "lock-order",
    "guard-across-probe",
    "ordering-comment",
    "suppression-syntax",
];

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The lint name, from [`LINTS`].
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub rel_path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel_path, self.line, self.lint, self.message
        )
    }
}

/// Whether `rel_path` is test-side code (integration tests, benches,
/// examples, fixtures) exempt from the library-perimeter lints.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|part| matches!(part, "tests" | "benches" | "examples" | "fixtures"))
}

/// Runs every enabled lint over `files` and applies suppressions.
///
/// `allow` lists lint names disabled wholesale for this run (from
/// `--allow`); `suppression-syntax` can never be disabled.
pub fn run(files: &[SourceFile], cfg: &Config, allow: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        lint_unsafe(file, cfg, &mut findings);
        lint_target_feature_parity(file, cfg, &mut findings);
        if !is_test_path(&file.rel_path) {
            lint_panic_freedom(file, cfg, &mut findings);
            lint_determinism(file, cfg, &mut findings);
            lint_locks(file, cfg, &mut findings);
            lint_ordering_comment(file, &mut findings);
        }
    }
    lint_drift_fields(files, cfg, &mut findings);

    // Parse suppressions (reporting malformed ones) and filter.
    let mut suppressions: Vec<(String, usize, usize, String)> = Vec::new();
    for file in files {
        collect_suppressions(file, &mut suppressions, &mut findings);
    }
    findings.retain(|f| {
        if f.lint == "suppression-syntax" {
            return true;
        }
        !suppressions.iter().any(|(path, start, end, name)| {
            *path == f.rel_path && name == f.lint && f.line >= *start && f.line <= *end
        })
    });

    findings.retain(|f| f.lint == "suppression-syntax" || !allow.iter().any(|a| a == f.lint));
    findings.sort_by(|a, b| (&a.rel_path, a.line, a.lint).cmp(&(&b.rel_path, b.line, b.lint)));
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    lint: &'static str,
    file: &SourceFile,
    line: usize,
    message: String,
) {
    findings.push(Finding {
        lint,
        rel_path: file.rel_path.clone(),
        line,
        message,
    });
}

/// Whether the 1-based `line` holds only comments/whitespace in the code
/// view.
fn comment_only(file: &SourceFile, line: usize) -> bool {
    file.code_line(line).trim().is_empty() && file.comments_on(line).next().is_some()
}

/// Whether a comment containing `tag` sits on `line` or on the contiguous
/// run of comment-only lines directly above it.
fn comment_tag_above(file: &SourceFile, line: usize, tag: &str) -> bool {
    if file.comments_on(line).any(|c| c.contains(tag)) {
        return true;
    }
    let mut l = line;
    while l > 1 && comment_only(file, l - 1) {
        l -= 1;
        if file.comments_on(l).any(|c| c.contains(tag)) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// unsafe-containment / safety-comment
// ---------------------------------------------------------------------------

/// `unsafe` may only appear in the declared kernel files; there, every
/// `unsafe` block needs a `// SAFETY:` comment and every `unsafe fn` a
/// `# Safety` doc section.
fn lint_unsafe(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    let allowed = cfg.allowed_unsafe.contains(&file.rel_path);
    for off in find_words(&file.code, "unsafe") {
        let line = file.line_of(off);
        if !allowed {
            push(
                findings,
                "unsafe-containment",
                file,
                line,
                "`unsafe` outside the declared kernel perimeter (allowed files: ".to_string()
                    + &cfg.allowed_unsafe.join(", ")
                    + ")",
            );
            continue;
        }
        let rest = file.code[off + "unsafe".len()..].trim_start();
        if rest.starts_with('{') {
            if !comment_tag_above(file, line, "SAFETY:") {
                push(
                    findings,
                    "safety-comment",
                    file,
                    line,
                    "`unsafe` block without a `// SAFETY:` comment on or above it".into(),
                );
            }
        } else if rest.starts_with("fn") && !doc_safety_above(file, line) {
            push(
                findings,
                "safety-comment",
                file,
                line,
                "`unsafe fn` without a `# Safety` doc section".into(),
            );
        }
    }
}

/// Whether the attribute/doc block directly above `line` contains a
/// `# Safety` doc line.  Attribute lines (`#[…]`) are skipped over; the doc
/// may sit above them.
fn doc_safety_above(file: &SourceFile, line: usize) -> bool {
    let mut l = line;
    while l > 1 {
        let prev = l - 1;
        let code = file.code_line(prev).trim().to_string();
        let passable = code.is_empty() && file.comments_on(prev).next().is_some()
            || code.starts_with('#')
            || code.ends_with(']') && !code.contains([';', '{']);
        if !passable {
            return false;
        }
        if file.comments_on(prev).any(|c| c.contains("# Safety")) {
            return true;
        }
        l = prev;
    }
    false
}

// ---------------------------------------------------------------------------
// target-feature-parity
// ---------------------------------------------------------------------------

/// Every `*_avx2` kernel must have a scalar twin (same name, suffix
/// stripped) defined in the same file and *named* inside a test region — the
/// parity test that compares the two.
fn lint_target_feature_parity(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if !cfg.allowed_unsafe.contains(&file.rel_path) {
        return;
    }
    let mut seen: Vec<String> = Vec::new();
    let bytes = file.code.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &file.code[start..i];
            if let Some(twin) = word.strip_suffix("_avx2") {
                if !twin.is_empty() && !seen.iter().any(|w| w == word) {
                    seen.push(word.to_string());
                    check_twin(file, twin, word, file.line_of(start), findings);
                }
            }
        } else {
            i += 1;
        }
    }
}

fn check_twin(
    file: &SourceFile,
    twin: &str,
    kernel: &str,
    line: usize,
    findings: &mut Vec<Finding>,
) {
    let defined = find_word(&file.code, &format!("fn {twin}")).is_some();
    if !defined {
        push(
            findings,
            "target-feature-parity",
            file,
            line,
            format!("accelerated kernel `{kernel}` has no scalar twin `fn {twin}` in this file"),
        );
        return;
    }
    let named_in_test = find_words(&file.code, twin)
        .iter()
        .any(|&off| file.in_test_region(file.line_of(off)));
    if !named_in_test {
        push(
            findings,
            "target-feature-parity",
            file,
            line,
            format!(
                "scalar twin `{twin}` of `{kernel}` is never named in a test region — \
                 the parity test must call both"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------------

/// On user-reachable library paths: no `unwrap`/`expect`/`panic!`/`todo!`/
/// `unimplemented!` and no `[…]` indexing outside test regions — errors
/// flow through `JoinError`.
fn lint_panic_freedom(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if !cfg.user_reachable.contains(&file.rel_path) {
        return;
    }
    let code = &file.code;
    for (needle, what) in [(".unwrap()", "`.unwrap()`"), (".expect(", "`.expect(…)`")] {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(needle) {
            let off = from + rel;
            from = off + needle.len();
            let line = file.line_of(off);
            if file.in_test_region(line) {
                continue;
            }
            push(
                findings,
                "panic-freedom",
                file,
                line,
                format!("{what} on a user-reachable path — return a typed `JoinError` instead"),
            );
        }
    }
    for mac in ["panic", "todo", "unimplemented"] {
        for off in find_words(code, mac) {
            if code.as_bytes().get(off + mac.len()) != Some(&b'!') {
                continue;
            }
            let line = file.line_of(off);
            if file.in_test_region(line) {
                continue;
            }
            push(
                findings,
                "panic-freedom",
                file,
                line,
                format!("`{mac}!` on a user-reachable path — return a typed `JoinError` instead"),
            );
        }
    }
    lint_indexing(file, findings);
}

/// `[…]` indexing (a panic on out-of-range) on user-reachable paths.
fn lint_indexing(file: &SourceFile, findings: &mut Vec<Finding>) {
    let bytes = file.code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let line = file.line_of(i);
        if file.in_test_region(line) {
            continue;
        }
        // Walk back over whitespace to the previous significant byte.
        let mut j = i;
        let mut prev = None;
        while j > 0 {
            j -= 1;
            if !bytes[j].is_ascii_whitespace() {
                prev = Some(bytes[j]);
                break;
            }
        }
        let Some(prev) = prev else { continue };
        let indexing = prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        // An array literal after a keyword (`for x in [… ]`, `return [… ]`)
        // ends on an identifier byte but indexes nothing.
        if indexing && (prev.is_ascii_alphanumeric() || prev == b'_') {
            let mut k = j + 1;
            while k > 0 && (bytes[k - 1].is_ascii_alphanumeric() || bytes[k - 1] == b'_') {
                k -= 1;
            }
            if matches!(
                &file.code[k..j + 1],
                "in" | "return" | "break" | "else" | "match" | "if" | "while"
            ) {
                continue;
            }
        }
        if indexing {
            push(
                findings,
                "panic-freedom",
                file,
                line,
                "`[…]` indexing on a user-reachable path — prefer `.get(…)` or prove the \
                 bound and suppress with a reason"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// Counter/metrics files must not read clocks or iterate hash containers;
/// bench serialization files must not use hash containers or `SystemTime`.
fn lint_determinism(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    let strict = cfg.determinism_strict.contains(&file.rel_path);
    let no_maps = cfg.in_no_maps_perimeter(&file.rel_path);
    if !strict && !no_maps {
        return;
    }
    let banned: &[(&str, &str)] = if strict {
        &[
            ("Instant", "clock reads feed deterministic counters"),
            ("SystemTime", "clock reads feed deterministic counters"),
            ("HashMap", "iteration order would leak into counter values"),
            ("HashSet", "iteration order would leak into counter values"),
        ]
    } else {
        &[
            (
                "SystemTime",
                "wall-clock values would drift BENCH_*.json output",
            ),
            (
                "HashMap",
                "iteration order would leak into BENCH_*.json output",
            ),
            (
                "HashSet",
                "iteration order would leak into BENCH_*.json output",
            ),
        ]
    };
    for &(word, why) in banned {
        for off in find_words(&file.code, word) {
            let line = file.line_of(off);
            if file.in_test_region(line) {
                continue;
            }
            push(
                findings,
                "determinism",
                file,
                line,
                format!("`{word}` inside the determinism perimeter — {why}"),
            );
        }
    }
}

/// Cross-check: every field name listed in the experiments binary's
/// `*_FIELDS` drift tables must exist as an identifier somewhere in the
/// workspace, so the drift check can't silently compare nothing.
fn lint_drift_fields(files: &[SourceFile], cfg: &Config, findings: &mut Vec<Finding>) {
    let Some(rel) = &cfg.drift_fields_file else {
        return;
    };
    let Some(file) = files.iter().find(|f| &f.rel_path == rel) else {
        return;
    };
    for table in ["BASELINE_FIELDS", "MUTABLE_FIELDS", "SERVING_FIELDS"] {
        let Some(off) = find_word(&file.code, table) else {
            push(
                findings,
                "determinism",
                file,
                1,
                format!("drift table `{table}` not found in {rel}"),
            );
            continue;
        };
        let line = file.line_of(off);
        // Field names live in string literals, so read the original text.
        // The array is `const T: [&str; N] = [ "a", "b", … ];` — the first
        // `[` after the `=` opens the literal (the type's `[` sits before).
        let Some(eq_rel) = file.text[off..].find('=') else {
            continue;
        };
        let eq = off + eq_rel;
        let Some(open_rel) = file.text[eq..].find('[') else {
            continue;
        };
        let open = eq + open_rel;
        let Some(close_rel) = file.text[open..].find(']') else {
            continue;
        };
        let body = &file.text[open + 1..open + close_rel];
        for field in string_literals(body) {
            let used = files
                .iter()
                .any(|f| f.rel_path != *rel && find_word(&f.code, &field).is_some());
            if !used {
                push(
                    findings,
                    "determinism",
                    file,
                    line,
                    format!(
                        "drift table `{table}` names field `{field}` which exists as an \
                         identifier nowhere in the workspace — stale drift check"
                    ),
                );
            }
        }
    }
}

/// The contents of every `"…"` literal in `text` (no escape handling —
/// drift field names are plain identifiers).
fn string_literals(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

// ---------------------------------------------------------------------------
// lock-order / guard-across-probe
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct LiveGuard {
    name: String,
    rank: Option<u8>,
    receiver: String,
    depth: usize,
    line: usize,
}

/// Intra-function lock discipline: ranked guards must be acquired in
/// strictly increasing rank order, and no guard may be live across a
/// probe/run call.
fn lint_locks(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    let sites: Vec<_> = cfg
        .lock_table
        .iter()
        .filter(|s| s.file == file.rel_path)
        .collect();
    let bytes = file.code.as_bytes();
    let mut depth = 0usize;
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            b'.' => {
                if let Some(call_len) = lock_call_at(&file.code, i) {
                    let line = file.line_of(i);
                    if !file.in_test_region(line) {
                        handle_acquisition(
                            file,
                            &sites,
                            &mut guards,
                            depth,
                            i,
                            call_len,
                            line,
                            findings,
                        );
                    }
                    i += call_len;
                    continue;
                }
            }
            // `drop(name)` releases a guard early.
            b'd' if file.code[i..].starts_with("drop(")
                && (i == 0 || !is_ident_byte(bytes[i - 1])) =>
            {
                let after = &file.code[i + 5..];
                let name: String = after
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                guards.retain(|g| g.name != name);
            }
            _ => {}
        }
        // Probe/run calls with a guard live.
        if !guards.is_empty() {
            let line = file.line_of(i);
            if !file.in_test_region(line) {
                for pat in &cfg.probe_calls {
                    if file.code[i..].starts_with(pat) && !is_fn_def(bytes, i, pat) {
                        let held: Vec<String> = guards
                            .iter()
                            .map(|g| format!("`{}` ({}:{})", g.name, g.receiver, g.line))
                            .collect();
                        push(
                            findings,
                            "guard-across-probe",
                            file,
                            line,
                            format!(
                                "probe-side call `{}…)` while lock guard(s) {} are live — \
                                 release before probing",
                                pat.trim_end_matches('('),
                                held.join(", ")
                            ),
                        );
                        i += pat.len() - 1;
                        break;
                    }
                }
            }
        }
        i += 1;
    }
}

/// If `code[dot..]` starts a zero-argument lock acquisition (`.lock()`,
/// `.read()`, `.write()`), returns the call's byte length.
fn lock_call_at(code: &str, dot: usize) -> Option<usize> {
    for call in [".lock()", ".read()", ".write()"] {
        if code[dot..].starts_with(call) {
            return Some(call.len());
        }
    }
    None
}

/// Whether the identifier starting at `at` is a `fn` definition's name
/// rather than a call (only relevant for dot-less probe patterns).
fn is_fn_def(bytes: &[u8], at: usize, pat: &str) -> bool {
    if pat.starts_with('.') {
        return false;
    }
    if at > 0 && is_ident_byte(bytes[at - 1]) {
        return true; // tail of a longer identifier
    }
    let mut j = at;
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    j >= 2 && &bytes[j - 2..j] == b"fn"
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[allow(clippy::too_many_arguments)]
fn handle_acquisition(
    file: &SourceFile,
    sites: &[&crate::config::LockSite],
    guards: &mut Vec<LiveGuard>,
    depth: usize,
    dot: usize,
    call_len: usize,
    line: usize,
    findings: &mut Vec<Finding>,
) {
    let receiver = receiver_before(&file.code, dot).unwrap_or_default();
    let rank = sites
        .iter()
        .find(|s| s.receiver == receiver)
        .map(|s| s.rank);
    if let Some(rank) = rank {
        for held in guards.iter() {
            if let Some(held_rank) = held.rank {
                if held_rank >= rank {
                    push(
                        findings,
                        "lock-order",
                        file,
                        line,
                        format!(
                            "acquiring `{receiver}` (rank {rank}) while `{}` (rank \
                             {held_rank}, line {}) is held — ranks must strictly \
                             increase along any nesting chain",
                            held.name, held.line
                        ),
                    );
                }
            }
        }
    }
    // A bound guard stays live to the end of its block; a chained call on
    // the guard (`.lock().push(…)`) is a temporary released immediately.
    let after = file.code[dot + call_len..].trim_start();
    if after.starts_with('.') {
        return;
    }
    if let Some(name) = binding_name(file, dot) {
        guards.push(LiveGuard {
            name,
            rank,
            receiver,
            depth,
            line,
        });
    }
}

/// The identifier immediately before the `.` of an acquisition, skipping a
/// trailing index expression (`self.shards[i].lock()` → `shards`) and any
/// interleaved whitespace/newlines (continuation lines).
fn receiver_before(code: &str, dot: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = dot;
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j > 0 && bytes[j - 1] == b']' {
        let mut depth = 0usize;
        while j > 0 {
            j -= 1;
            match bytes[j] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = j;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    if j == end {
        None
    } else {
        Some(code[j..end].to_string())
    }
}

/// If the statement containing the acquisition at `dot` is a `let` binding,
/// returns the bound name (the last identifier of the pattern).
fn binding_name(file: &SourceFile, dot: usize) -> Option<String> {
    let bytes = file.code.as_bytes();
    let mut start = dot;
    while start > 0 && !matches!(bytes[start - 1], b';' | b'{' | b'}') {
        start -= 1;
    }
    let stmt = &file.code[start..dot];
    let let_at = find_word(stmt, "let")?;
    let eq = stmt[let_at..].find('=')?;
    let pattern = &stmt[let_at + 3..let_at + eq];
    let mut last = None;
    for word in pattern.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        if !word.is_empty() && word != "mut" {
            last = Some(word.to_string());
        }
    }
    last
}

// ---------------------------------------------------------------------------
// ordering-comment
// ---------------------------------------------------------------------------

/// Every `Ordering::Relaxed` needs an adjacent `// ORDERING:` comment
/// arguing why relaxed is enough (the stricter orderings document
/// themselves by pairing with an acquire/release partner).
fn lint_ordering_comment(file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut from = 0usize;
    const NEEDLE: &str = "Ordering::Relaxed";
    while let Some(rel) = file.code[from..].find(NEEDLE) {
        let off = from + rel;
        from = off + NEEDLE.len();
        let line = file.line_of(off);
        if file.in_test_region(line) {
            continue;
        }
        if !ordering_comment_near(file, line) {
            push(
                findings,
                "ordering-comment",
                file,
                line,
                "bare `Ordering::Relaxed` — add an adjacent `// ORDERING:` comment \
                 arguing why relaxed is sufficient"
                    .into(),
            );
        }
    }
}

/// Whether a `// ORDERING:` comment sits on `line` or within the 12
/// preceding lines with no fully blank line in between (one comment may
/// cover a contiguous block of relaxed operations).
fn ordering_comment_near(file: &SourceFile, line: usize) -> bool {
    if file.comments_on(line).any(|c| c.contains("ORDERING:")) {
        return true;
    }
    let mut l = line;
    for _ in 0..12 {
        if l <= 1 {
            break;
        }
        l -= 1;
        let blank = file.code_line(l).trim().is_empty() && file.comments_on(l).next().is_none();
        if blank {
            break;
        }
        if file.comments_on(l).any(|c| c.contains("ORDERING:")) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// suppressions
// ---------------------------------------------------------------------------

/// Parses `// lint: allow(<name>) -- <reason>` comments.  Each suppression
/// covers its own line, any directly following comment-only lines, and the
/// statement that starts on the next code line (through the first line
/// containing `;` or `{`, capped at 8 lines).
fn collect_suppressions(
    file: &SourceFile,
    out: &mut Vec<(String, usize, usize, String)>,
    findings: &mut Vec<Finding>,
) {
    for (line, text) in &file.comments {
        // Doc comments only *describe* the syntax; live suppressions are
        // plain `//` comments.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(at) = text.find("lint:") else {
            continue;
        };
        let spec = text[at + "lint:".len()..].trim();
        let parsed = (|| -> Option<(String, bool)> {
            let rest = spec.strip_prefix("allow(")?;
            let close = rest.find(')')?;
            let name = rest[..close].trim().to_string();
            let tail = rest[close + 1..].trim_start();
            let reason = tail.strip_prefix("--")?.trim();
            Some((name, !reason.is_empty()))
        })();
        let Some((name, has_reason)) = parsed else {
            push(
                findings,
                "suppression-syntax",
                file,
                *line,
                "malformed suppression — expected `// lint: allow(<name>) -- <reason>`".into(),
            );
            continue;
        };
        if !LINTS.contains(&name.as_str()) {
            push(
                findings,
                "suppression-syntax",
                file,
                *line,
                format!("suppression names unknown lint `{name}`"),
            );
            continue;
        }
        if name == "suppression-syntax" {
            push(
                findings,
                "suppression-syntax",
                file,
                *line,
                "`suppression-syntax` cannot be suppressed".into(),
            );
            continue;
        }
        if !has_reason {
            push(
                findings,
                "suppression-syntax",
                file,
                *line,
                format!("suppression of `{name}` is missing a reason after `--`"),
            );
            continue;
        }
        out.push((
            file.rel_path.clone(),
            *line,
            coverage_end(file, *line),
            name,
        ));
    }
}

/// The last 1-based line a suppression at `line` covers.
fn coverage_end(file: &SourceFile, line: usize) -> usize {
    let mut l = line;
    // Skip the rest of the comment block.
    while l < file.line_count() && comment_only(file, l + 1) {
        l += 1;
    }
    // Cover the following statement, through its first `;` or `{`.
    let mut budget = 8usize;
    while l < file.line_count() && budget > 0 {
        l += 1;
        budget -= 1;
        let code = file.code_line(l);
        if code.contains(';') || code.contains('{') {
            break;
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check_one(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
        let file = SourceFile::scan(rel, src);
        run(&[file], cfg, &[])
    }

    #[test]
    fn unsafe_outside_perimeter_is_contained() {
        let cfg = Config::empty(PathBuf::from("."));
        let f = check_one("src/x.rs", "fn f() {\n    unsafe { g(); }\n}\n", &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "unsafe-containment");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_satisfies_the_block_rule() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.allowed_unsafe.push("src/k.rs".into());
        let clean = "fn f() {\n    // SAFETY: bounds proven above.\n    unsafe { g(); }\n}\n";
        assert!(check_one("src/k.rs", clean, &cfg).is_empty());
        let dirty = "fn f() {\n    unsafe { g(); }\n}\n";
        let f = check_one("src/k.rs", dirty, &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "safety-comment");
    }

    #[test]
    fn suppression_with_reason_silences_a_finding() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.user_reachable.push("src/lib.rs".into());
        let src = "pub fn f(v: &[u8]) -> u8 {\n    \
                   // lint: allow(panic-freedom) -- caller proves non-empty.\n    \
                   *v.first().unwrap()\n}\n";
        assert!(check_one("src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn malformed_suppression_is_reported_and_does_not_silence() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.user_reachable.push("src/lib.rs".into());
        let src = "pub fn f(v: &[u8]) -> u8 {\n    \
                   // lint: allow(panic-freedom)\n    \
                   *v.first().unwrap()\n}\n";
        let f = check_one("src/lib.rs", src, &cfg);
        let lints: Vec<_> = f.iter().map(|x| x.lint).collect();
        assert!(lints.contains(&"suppression-syntax"), "{f:?}");
        assert!(lints.contains(&"panic-freedom"), "{f:?}");
    }

    #[test]
    fn lock_order_flags_inverted_ranks_only() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.lock_table.push(crate::config::LockSite {
            file: "src/l.rs",
            receiver: "low",
            rank: 10,
        });
        cfg.lock_table.push(crate::config::LockSite {
            file: "src/l.rs",
            receiver: "high",
            rank: 20,
        });
        let clean = "fn f() {\n    let a = low.lock();\n    let b = high.lock();\n}\n";
        assert!(check_one("src/l.rs", clean, &cfg).is_empty());
        let dirty = "fn f() {\n    let a = high.lock();\n    let b = low.lock();\n}\n";
        let f = check_one("src/l.rs", dirty, &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "lock-order");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn guard_dies_at_scope_end_and_on_drop() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.lock_table.push(crate::config::LockSite {
            file: "src/l.rs",
            receiver: "high",
            rank: 20,
        });
        cfg.lock_table.push(crate::config::LockSite {
            file: "src/l.rs",
            receiver: "low",
            rank: 10,
        });
        let scoped = "fn f() {\n    {\n        let a = high.lock();\n    }\n    \
                      let b = low.lock();\n}\n";
        assert!(check_one("src/l.rs", scoped, &cfg).is_empty());
        let dropped = "fn f() {\n    let a = high.lock();\n    drop(a);\n    \
                       let b = low.lock();\n}\n";
        assert!(check_one("src/l.rs", dropped, &cfg).is_empty());
    }

    #[test]
    fn chained_temporaries_are_not_live_guards() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.lock_table.push(crate::config::LockSite {
            file: "src/l.rs",
            receiver: "high",
            rank: 20,
        });
        cfg.lock_table.push(crate::config::LockSite {
            file: "src/l.rs",
            receiver: "low",
            rank: 10,
        });
        let src = "fn f() {\n    let n = high.lock().len();\n    let b = low.lock();\n}\n";
        assert!(check_one("src/l.rs", src, &cfg).is_empty());
    }

    #[test]
    fn probe_under_guard_is_flagged() {
        let cfg = Config::empty(PathBuf::from("."));
        let src = "fn f() {\n    let g = m.lock();\n    handle.query(&probe);\n}\n";
        let f = check_one("src/l.rs", src, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "guard-across-probe");
    }

    #[test]
    fn ordering_comment_covers_adjacent_relaxed_block() {
        let cfg = Config::empty(PathBuf::from("."));
        let clean = "fn f() {\n    // ORDERING: monotonic counter, no ordering needed.\n    \
                     x.fetch_add(1, Ordering::Relaxed);\n    \
                     y.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(check_one("src/o.rs", clean, &cfg).is_empty());
        let dirty = "fn f() {\n    x.fetch_add(1, Ordering::Relaxed);\n}\n";
        let f = check_one("src/o.rs", dirty, &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "ordering-comment");
    }

    #[test]
    fn determinism_perimeter_bans_hash_containers() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.determinism_strict.push("src/m.rs".into());
        let src = "use std::collections::HashMap;\n";
        let f = check_one("src/m.rs", src, &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "determinism");
    }

    #[test]
    fn parity_requires_twin_defined_and_tested() {
        let mut cfg = Config::empty(PathBuf::from("."));
        cfg.allowed_unsafe.push("src/k.rs".into());
        let clean = "fn dist(a: f64) -> f64 { a }\n\
                     /// # Safety\n\
                     /// Caller checks CPU features.\n\
                     #[target_feature(enable = \"avx2\")]\n\
                     unsafe fn dist_avx2(a: f64) -> f64 { a }\n\
                     #[cfg(test)]\n\
                     mod tests {\n    fn parity() { let _ = dist; }\n}\n";
        assert!(check_one("src/k.rs", clean, &cfg).is_empty());
        let no_twin = "/// # Safety\n\
                       /// Caller checks CPU features.\n\
                       #[target_feature(enable = \"avx2\")]\n\
                       unsafe fn dist_avx2(a: f64) -> f64 { a }\n";
        let f = check_one("src/k.rs", no_twin, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "target-feature-parity");
    }
}
