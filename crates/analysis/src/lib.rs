//! Workspace invariant checker: a dependency-free lint pass over the
//! workspace's own sources.
//!
//! `cargo run -p analysis -- check` scans every `.rs` file (skipping
//! `target/`, the vendored shims and the known-bad lint fixtures) with a
//! hand-rolled comment/string-aware scanner and enforces the invariants the
//! code comments only used to *claim*:
//!
//! * **unsafe-containment / safety-comment / target-feature-parity** —
//!   `unsafe` stays inside the declared kernel files, every unsafe block
//!   carries a `// SAFETY:` argument, every accelerated kernel has a scalar
//!   twin exercised by a parity test;
//! * **panic-freedom** — user-reachable library paths return typed
//!   `JoinError`s instead of panicking (no unwrap/expect/panic!/indexing);
//! * **determinism** — counter/metrics files never read clocks or iterate
//!   hash containers, bench serialization never lets wall-clock or hash
//!   order leak into `BENCH_*.json`, and the experiments binary's drift
//!   tables name real fields;
//! * **lock-order / guard-across-probe** — the declared lock-rank table
//!   (`mapreduce::sync::ranks`) is checked intra-function, and no lock
//!   guard is live across a probe/run call;
//! * **ordering-comment** — every `Ordering::Relaxed` justifies itself with
//!   an adjacent `// ORDERING:` comment.
//!
//! The runtime twin of this pass is the `debug-invariants` cargo feature
//! (see `mapreduce::sync`), which audits the same lock order dynamically
//! and asserts the delta-layer structural invariants on every mutation
//! commit.  Single sites opt out with
//! `// lint: allow(<name>) -- <reason>`; the reason is mandatory.

pub mod config;
pub mod lexer;
pub mod lints;

pub use config::Config;
pub use lexer::SourceFile;
pub use lints::{Finding, LINTS};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", "fixtures"];

/// Loads every workspace `.rs` file under `root`, skipping build output,
/// vendored shims and the analysis fixtures (which are known-bad on
/// purpose).
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(root.join(&path))?;
        files.push(SourceFile::scan(path, text));
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs the full pass over the workspace at `cfg.root`.
pub fn check_workspace(cfg: &Config, allow: &[String]) -> io::Result<Vec<Finding>> {
    let files = collect_sources(&cfg.root)?;
    Ok(lints::run(&files, cfg, allow))
}

/// Locates the workspace root: `--root` if given, else the current
/// directory, else (when running under cargo) the directory two levels
/// above this crate's manifest.
pub fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
        return cwd;
    }
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    cwd
}
