//! Fixture-based self-tests for the lint pass.
//!
//! `tests/fixtures/<lint>/bad.rs` holds one known-bad snippet per lint; each
//! must trip *exactly* its lint (a fixture tripping nothing means the lint
//! regressed, a fixture tripping a second lint means the snippets overlap
//! and a regression in one lint could hide behind the other).  A final smoke
//! test runs the full pass over the real workspace and requires it clean —
//! the same gate CI applies via `cargo run -p analysis -- check --deny-all`.

use analysis::config::{Config, LockSite};
use analysis::lexer::SourceFile;
use analysis::{lints, LINTS};
use std::path::PathBuf;

fn load_fixture(lint: &str) -> SourceFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(lint)
        .join("bad.rs");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    // Fixtures are scanned under a neutral relative path so the per-lint
    // configs below can name it.
    SourceFile::scan("bad.rs", text)
}

/// The narrowed policy that puts `bad.rs` on exactly the perimeter the lint
/// under test patrols.
fn config_for(lint: &str) -> Config {
    let mut cfg = Config::empty(PathBuf::from("."));
    match lint {
        "safety-comment" | "target-feature-parity" => {
            cfg.allowed_unsafe.push("bad.rs".into());
        }
        "panic-freedom" => cfg.user_reachable.push("bad.rs".into()),
        "determinism" => cfg.determinism_strict.push("bad.rs".into()),
        "lock-order" => {
            cfg.lock_table.push(LockSite {
                file: "bad.rs",
                receiver: "low",
                rank: 10,
            });
            cfg.lock_table.push(LockSite {
                file: "bad.rs",
                receiver: "high",
                rank: 20,
            });
        }
        // unsafe-containment, guard-across-probe, ordering-comment and
        // suppression-syntax patrol every file.
        _ => {}
    }
    cfg
}

#[test]
fn every_lint_has_a_fixture_that_trips_exactly_it() {
    for lint in LINTS {
        let file = load_fixture(lint);
        let cfg = config_for(lint);
        let findings = lints::run(&[file], &cfg, &[]);
        assert!(
            !findings.is_empty(),
            "known-bad fixture for `{lint}` tripped nothing — the lint has regressed"
        );
        for finding in &findings {
            assert_eq!(
                finding.lint, *lint,
                "fixture for `{lint}` also tripped `{}`: {finding}",
                finding.lint
            );
        }
    }
}

#[test]
fn fixtures_and_lints_are_in_sync() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|entry| Some(entry.ok()?.file_name().to_string_lossy().into_owned()))
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = LINTS.iter().map(|l| l.to_string()).collect();
    expected.sort();
    assert_eq!(on_disk, expected, "fixture directories must mirror LINTS");
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/analysis")
        .to_path_buf();
    let cfg = Config::workspace(root);
    let findings = analysis::check_workspace(&cfg, &[]).expect("scanning the workspace");
    assert!(
        findings.is_empty(),
        "the workspace must stay lint-clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
