// Known-bad: `.unwrap()` on a user-reachable library path.

pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
