// Known-bad: `unsafe` outside the declared kernel perimeter.

pub fn touch(p: *const u8) -> u8 {
    unsafe { *p }
}
