// Known-bad: a bare `Ordering::Relaxed` with no adjacent `// ORDERING:`
// comment arguing why relaxed is sufficient.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
