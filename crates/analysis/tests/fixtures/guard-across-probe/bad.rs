// Known-bad: a lock guard stays live across a probe-side call.

pub fn probe_under_guard(table: &Lock, join: &Prepared, q: &Query) {
    let guard = table.lock();
    join.query(q);
    drop(guard);
}
