// Known-bad: a suppression with no `-- <reason>` tail.

pub fn noted() -> u32 {
    // lint: allow(panic-freedom)
    7
}
