// Known-bad: a hash container inside the determinism perimeter — its
// iteration order would leak into counter values.

use std::collections::HashMap;

pub fn count(words: &[String]) -> usize {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for w in words {
        *seen.entry(w).or_insert(0) += 1;
    }
    seen.len()
}
