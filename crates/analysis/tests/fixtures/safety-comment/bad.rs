// Known-bad: an `unsafe` block inside the kernel perimeter with no
// `// SAFETY:` argument.

pub fn touch(p: *const u8) -> u8 {
    unsafe { *p }
}
