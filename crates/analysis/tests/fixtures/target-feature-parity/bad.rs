// Known-bad: an accelerated kernel with no scalar twin (and therefore no
// parity test naming one).

/// # Safety
/// Caller must verify AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_avx2(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
