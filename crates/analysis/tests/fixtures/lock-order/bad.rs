// Known-bad: acquiring a lower-ranked lock while a higher-ranked guard is
// held — an inversion of the declared lock-order table.

pub fn inverted(low: &Lock, high: &Lock) {
    let _outer = high.lock();
    let _inner = low.lock();
}
